// Benchmarks for the amortized pipeline: engine reuse across Matcher and
// MatchAll calls, cache-served compilation, and the zero-allocation
// interned-symbol hot path. The */fresh variants measure what every call
// paid before compilation and engines were cached; the */cached variants
// are the steady state.
package dregex_test

import (
	"fmt"
	"testing"

	"dregex"
)

const benchModel = "(login, (query, page*)*, logout)"

var benchSession = []string{"login", "query", "page", "page", "query", "page", "logout"}

func BenchmarkMatcherFresh(b *testing.B) {
	// Pre-refactor shape: compile + build an engine for every request.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := dregex.Compile(benchModel, dregex.DTD)
		if err != nil {
			b.Fatal(err)
		}
		m, err := e.Matcher(dregex.Auto)
		if err != nil {
			b.Fatal(err)
		}
		if !m.MatchSymbols(benchSession) {
			b.Fatal("session must match")
		}
	}
}

func BenchmarkMatcherCached(b *testing.B) {
	// Steady state: cached engine, names still resolved per symbol.
	e := dregex.MustCompile(benchModel, dregex.DTD)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := e.Matcher(dregex.Auto)
		if err != nil {
			b.Fatal(err)
		}
		if !m.MatchSymbols(benchSession) {
			b.Fatal("session must match")
		}
	}
}

func BenchmarkMatchWordInterned(b *testing.B) {
	// The full hot path: cached engine + pre-interned word. This is the
	// benchmark pinned at 0 allocs/op.
	e := dregex.MustCompile(benchModel, dregex.DTD)
	m, err := e.Matcher(dregex.Auto)
	if err != nil {
		b.Fatal(err)
	}
	word := e.Intern(benchSession)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.MatchWord(word) {
			b.Fatal("session must match")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(word)), "ns/sym")
}

func benchWords(e *dregex.Expr, n int) [][]string {
	ws := make([][]string, n)
	for i := range ws {
		switch i % 3 {
		case 0:
			ws[i] = []string{"title", "author", "section"}
		case 1:
			ws[i] = []string{"title", "author", "appendix"}
		default:
			ws[i] = []string{"title", "section"} // invalid
		}
	}
	return ws
}

func BenchmarkMatchAllFresh(b *testing.B) {
	// Pre-refactor shape: the batch engine was rebuilt per MatchAll call
	// (and the expression recompiled per request).
	ws := benchWords(nil, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := dregex.Compile("(title, author, (section | appendix)?)", dregex.DTD)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.MatchAll(ws, dregex.Auto); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchAllCached(b *testing.B) {
	e := dregex.MustCompile("(title, author, (section | appendix)?)", dregex.DTD)
	ws := benchWords(e, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.MatchAll(ws, dregex.Auto); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheGet(b *testing.B) {
	// Validator traffic: a hot key set served from the sharded LRU.
	c := dregex.NewCache(1024)
	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("(a%d, (b%d | c%d)*, d%d?)", i, i, i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := c.Get(keys[i%len(keys)], dregex.DTD); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkNumericStreamInterned is the counter-engine hot path: cached
// NumericMatcher, reused NumericStream, pre-interned word — the XSD
// validator's steady-state children-matching cost per document.
func BenchmarkNumericStreamInterned(b *testing.B) {
	e, err := dregex.CompileNumeric("(login, (query, page{1,8}){1,32}, logout)", dregex.DTD)
	if err != nil {
		b.Fatal(err)
	}
	m := e.Matcher()
	word := e.Intern(benchSession)
	var s dregex.NumericStream
	run := func() bool {
		m.InitStream(&s)
		for _, a := range word {
			if !s.Feed(a) {
				return false
			}
		}
		return s.Accepts()
	}
	if !run() { // warm up stream buffers
		b.Fatal("session must match")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !run() {
			b.Fatal("session must match")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(word)), "ns/sym")
}

func BenchmarkParseWord(b *testing.B) {
	// Witness-recorded matching: same cached engine and interned word as
	// BenchmarkMatchWordInterned, but recording the position trace and
	// materializing the parse tree. The gap between the two benchmarks is
	// the full cost of opting into parsing.
	e := dregex.MustCompile(benchModel, dregex.DTD)
	m, err := e.Matcher(dregex.Auto)
	if err != nil {
		b.Fatal(err)
	}
	word := e.Intern(benchSession)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.ParseWord(word)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Accepted {
			b.Fatal("session must parse")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(word)), "ns/sym")
}

func BenchmarkLexerStream(b *testing.B) {
	// Streaming longest-match tokenization over a reused stream: number,
	// identifier, and separator rules on the table tier.
	lex, err := dregex.NewLexer(
		dregex.LexRule{Tag: "num", Expr: dregex.MustCompile("(0+1+2+3+4+5+6+7+8+9)(0+1+2+3+4+5+6+7+8+9)*", dregex.Math)},
		dregex.LexRule{Tag: "id", Expr: dregex.MustCompile("(a+b+c)(a+b+c)*", dregex.Math)},
		dregex.LexRule{Tag: "sep", Expr: dregex.MustCompile("s", dregex.Math)},
	)
	if err != nil {
		b.Fatal(err)
	}
	input := ""
	for i := 0; i < 32; i++ {
		input += "abc123scba0s99aabbs"
	}
	toks := 0
	s := lex.Stream(func(dregex.Token) error { toks++; return nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		if err := s.FeedString(input); err != nil {
			b.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	if toks == 0 {
		b.Fatal("no tokens")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(input)), "ns/byte")
}
