package dregex

// Lexer: longest-match streaming tokenization over a set of tagged
// deterministic expressions (the dre exemplar's workload, powered by the
// same run machinery as matching). Maximal munch with last-accept
// backtracking: every rule runs in lockstep over the input, the longest
// prefix any rule accepts becomes the next token (first rule wins ties),
// and scanning resumes right after it — the symbols read past the accept
// point are re-fed from an internal buffer, so feeding stays strictly
// incremental (runes or raw UTF-8 chunks) with no access to the input
// after the fact. Rules that compiled to the dense-table tier step through
// raw int32 DFA states, one table load per rune.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"unicode/utf8"

	"dregex/internal/match"
	"dregex/internal/match/table"
	"dregex/internal/parsetree"
	"dregex/internal/run"
)

// LexRule tags one deterministic expression. Symbols are matched per rune
// (the paper's math notation — compile rules with Math syntax), so a rule
// whose alphabet has multi-rune symbol names never matches.
type LexRule struct {
	Tag  string
	Expr *Expr
}

// Token is one lexeme: the input slice [Pos, Pos+len(Lexeme)) matched by
// the rule named Tag.
type Token struct {
	Tag    string
	Lexeme string
	Pos    int // byte offset in the overall input
}

// Lexer is an immutable compiled rule set, safe for concurrent use;
// per-input state lives in LexStream values.
type Lexer struct {
	rules []lexRule
}

// lexRule is one compiled rule: the table fast path when the expression's
// Auto tier built one, the generic §4 simulator otherwise.
type lexRule struct {
	tag string
	e   *Expr
	tab *table.DFA
	sim match.TransitionSim
}

// NewLexer compiles a rule set. Every rule must be deterministic (that is
// the paper's premise and what makes the longest match unique) and must
// not accept the empty word (an ε-token would make "longest" meaningless).
func NewLexer(rules ...LexRule) (*Lexer, error) {
	if len(rules) == 0 {
		return nil, errors.New("dregex: lexer needs at least one rule")
	}
	l := &Lexer{rules: make([]lexRule, len(rules))}
	for i, r := range rules {
		if r.Expr == nil {
			return nil, fmt.Errorf("dregex: lexer rule %q has no expression", r.Tag)
		}
		m, err := r.Expr.Matcher(Auto)
		if err != nil {
			return nil, fmt.Errorf("dregex: lexer rule %q: %w", r.Tag, err)
		}
		if m.MatchWord(nil) {
			return nil, fmt.Errorf("dregex: lexer rule %q accepts the empty word", r.Tag)
		}
		l.rules[i] = lexRule{tag: r.Tag, e: r.Expr, tab: m.tab, sim: m.sim}
	}
	return l, nil
}

// ruleState is one rule's live run: a raw DFA state on the table fast
// path, a tree position otherwise.
type ruleState struct {
	state int32
	cur   parsetree.NodeID
	alive bool
}

// step advances one rule by one rune; it reports whether the prefix up to
// and including ch is accepted by the rule. A rune outside the rule's
// alphabet (or past every follower) kills just that rule.
func (r *lexRule) step(st *ruleState, ch rune) bool {
	if r.tab != nil {
		a, ok := run.LookupRune(r.e.alpha, ch)
		if !ok {
			st.alive = false
			return false
		}
		st.state = r.tab.Step(st.state, a)
		if st.state == table.Dead {
			st.alive = false
			return false
		}
		return r.tab.AcceptState(st.state)
	}
	a, ok := run.LookupRune(r.e.alpha, ch)
	if !ok {
		st.alive = false
		return false
	}
	nxt := r.sim.Next(st.cur, a)
	if nxt == parsetree.Null {
		st.alive = false
		return false
	}
	st.cur = nxt
	return r.sim.Accept(st.cur)
}

// LexStream is the incremental tokenizer state over one input. Feed bytes
// or runes as they arrive; tokens are emitted through the callback as soon
// as maximal munch resolves them, and Flush settles the tail at EOF. A
// LexStream is single-goroutine state; Reset reuses it (buffers retained)
// on a new input.
type LexStream struct {
	l    *Lexer
	emit func(Token) error
	st   []ruleState
	// buf holds the bytes of the current candidate token plus lookahead:
	// everything since the last emitted token. scan is the offset of the
	// next undecoded rune in buf; pos the byte offset of buf[0] in the
	// overall input.
	buf      []byte
	scan     int
	pos      int
	alive    int // rules still live on buf[:scan]
	lastEnd  int // byte length of the longest accepted prefix (-1: none)
	lastRule int
	flushing bool
}

// Stream starts a tokenization run; emitted tokens flow to emit, whose
// error (if any) aborts the run and surfaces from Feed*/Flush.
func (l *Lexer) Stream(emit func(Token) error) *LexStream {
	s := &LexStream{l: l, emit: emit, st: make([]ruleState, len(l.rules))}
	s.Reset()
	return s
}

// Reset rewinds the stream for a new input, retaining buffers.
func (s *LexStream) Reset() {
	s.buf = s.buf[:0]
	s.scan, s.pos = 0, 0
	s.restart()
}

// restart rewinds every rule to its start state for the next token.
func (s *LexStream) restart() {
	for i := range s.st {
		s.st[i] = ruleState{state: 0, cur: parsetree.Null, alive: true}
		if s.l.rules[i].tab == nil {
			s.st[i].cur = s.l.rules[i].sim.Start()
		}
	}
	s.alive = len(s.st)
	s.lastEnd, s.lastRule = -1, -1
}

// FeedBytes consumes a chunk of UTF-8 input (any chunking, including
// mid-rune splits: an incomplete trailing sequence waits for more bytes).
func (s *LexStream) FeedBytes(b []byte) error {
	s.buf = append(s.buf, b...)
	return s.drain()
}

// FeedString is FeedBytes over a string chunk.
func (s *LexStream) FeedString(str string) error {
	s.buf = append(s.buf, str...)
	return s.drain()
}

// FeedRune consumes one rune.
func (s *LexStream) FeedRune(r rune) error {
	s.buf = utf8.AppendRune(s.buf, r)
	return s.drain()
}

// Flush settles the buffered tail at end of input: the pending longest
// accept is emitted even though more input could have extended it, then
// the lookahead re-lexes, until the buffer empties. A tail no rule
// accepts any prefix of is a lexical error.
func (s *LexStream) Flush() error {
	s.flushing = true
	defer func() { s.flushing = false }()
	for len(s.buf) > 0 {
		if err := s.drain(); err != nil {
			return err
		}
		if len(s.buf) == 0 {
			break
		}
		if err := s.cut(); err != nil {
			return err
		}
	}
	return nil
}

// drain decodes buffered runes from scan onward, stepping every live rule;
// when all rules die the pending token is cut and the lookahead re-lexed
// (including a lookahead left by a cut at the very end of the buffer).
func (s *LexStream) drain() error {
	for {
		for s.scan < len(s.buf) {
			if s.alive == 0 {
				if err := s.cut(); err != nil {
					return err
				}
				continue
			}
			ch, size := utf8.DecodeRune(s.buf[s.scan:])
			if ch == utf8.RuneError && size == 1 && !s.flushing && !utf8.FullRune(s.buf[s.scan:]) {
				return nil // incomplete trailing sequence: wait for more bytes
			}
			s.scan += size
			for i := range s.st {
				if !s.st[i].alive {
					continue
				}
				accepted := s.l.rules[i].step(&s.st[i], ch)
				if !s.st[i].alive {
					s.alive--
					continue
				}
				// First rule accepting at a new length wins the tie.
				if accepted && s.scan > s.lastEnd {
					s.lastEnd, s.lastRule = s.scan, i
				}
			}
		}
		if s.alive == 0 && len(s.buf) > 0 {
			if err := s.cut(); err != nil {
				return err
			}
			continue // rescan the lookahead the cut left behind
		}
		return nil
	}
}

// cut emits the pending longest-accepted prefix as a token and rewinds the
// rules over the remaining lookahead (last-accept backtracking).
func (s *LexStream) cut() error {
	if s.lastEnd < 0 {
		ch, _ := utf8.DecodeRune(s.buf)
		return fmt.Errorf("dregex: no token matches at byte %d (%q)", s.pos, ch)
	}
	tok := Token{Tag: s.l.rules[s.lastRule].tag, Lexeme: string(s.buf[:s.lastEnd]), Pos: s.pos}
	s.pos += s.lastEnd
	n := copy(s.buf, s.buf[s.lastEnd:])
	s.buf = s.buf[:n]
	s.scan = 0
	s.restart()
	if err := s.emit(tok); err != nil {
		return err
	}
	return nil
}

// Tokens lexes a whole input into its token sequence.
func (l *Lexer) Tokens(input string) ([]Token, error) {
	var out []Token
	s := l.Stream(func(t Token) error {
		out = append(out, t)
		return nil
	})
	if err := s.FeedString(input); err != nil {
		return out, err
	}
	if err := s.Flush(); err != nil {
		return out, err
	}
	return out, nil
}

// TokensBytes is Tokens over raw UTF-8 bytes.
func (l *Lexer) TokensBytes(b []byte) ([]Token, error) {
	var out []Token
	s := l.Stream(func(t Token) error {
		out = append(out, t)
		return nil
	})
	if err := s.FeedBytes(b); err != nil {
		return out, err
	}
	if err := s.Flush(); err != nil {
		return out, err
	}
	return out, nil
}

// LexReader streams tokens from rd through emit in one sequential pass —
// the input is never buffered beyond the current token's lookahead.
func (l *Lexer) LexReader(rd io.Reader, emit func(Token) error) error {
	s := l.Stream(emit)
	br := bufio.NewReader(rd)
	var chunk [4096]byte
	for {
		n, err := br.Read(chunk[:])
		if n > 0 {
			if ferr := s.FeedBytes(chunk[:n]); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return s.Flush()
		}
		if err != nil {
			return fmt.Errorf("dregex: lex read: %w", err)
		}
	}
}
