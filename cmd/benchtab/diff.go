// Snapshot diffing: BENCH_<date>.json files (written by `make bench`)
// carry the raw `go test -bench` output; this file parses the benchmark
// lines out of two snapshots and prints per-benchmark metric deltas.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// snapshot mirrors the BENCH_<date>.json layout.
type snapshot struct {
	Date  string `json:"date"`
	Go    string `json:"go"`
	Bench string `json:"bench"`
}

// benchMetrics maps benchmark name → metric unit → value.
type benchMetrics map[string]map[string]float64

// readSnapshot loads and parses one snapshot file.
func readSnapshot(path string) (snapshot, benchMetrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return snapshot{}, nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return snapshot{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := parseBench(s.Bench)
	if len(m) == 0 {
		return s, nil, fmt.Errorf("%s: no benchmark lines in snapshot", path)
	}
	return s, m, nil
}

// parseBench extracts benchmark results from raw `go test -bench` output:
// lines of the form
//
//	BenchmarkName[-procs]  N  value unit  [value unit]...
func parseBench(text string) benchMetrics {
	out := benchMetrics{}
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -GOMAXPROCS suffix so snapshots from different
		// machines still align.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) > 0 {
			out[name] = metrics
		}
	}
	return out
}

// metricOrder ranks the common units so tables read time → memory.
var metricOrder = map[string]int{
	"ns/op": 0, "ns/sym": 1, "B/op": 2, "allocs/op": 3,
}

func sortMetrics(units []string) {
	sort.Slice(units, func(i, j int) bool {
		ri, iok := metricOrder[units[i]]
		rj, jok := metricOrder[units[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok != jok:
			return iok
		default:
			return units[i] < units[j]
		}
	})
}

// gateConfig is the optional regression gate of diff mode: benchmarks
// whose name matches Pattern fail the diff when any gated metric regresses
// by more than MaxRegressPct (any regression at all off a zero baseline —
// the repo's pinned 0-alloc paths — fails regardless of the percentage).
type gateConfig struct {
	Pattern       *regexp.Regexp
	MaxRegressPct float64
	// Units restricts which metrics the gate inspects (nil means
	// defaultGatedUnits). CI gates allocation metrics only — they are
	// machine-independent, unlike ns/op across runner generations.
	Units map[string]bool
}

// defaultGatedUnits are the metrics the regression gate inspects when
// -gate-units is not given. Time and allocation metrics only:
// throughput-style custom units would invert the comparison, and none are
// emitted today.
var defaultGatedUnits = map[string]bool{
	"ns/op": true, "ns/sym": true, "B/op": true, "allocs/op": true,
}

// regression reports whether old → new is a gated regression.
func (g *gateConfig) regression(unit string, old, new float64) bool {
	units := g.Units
	if units == nil {
		units = defaultGatedUnits
	}
	if !units[unit] || new <= old {
		return false
	}
	if old == 0 {
		return true // a pinned zero moved — always a failure
	}
	return 100*(new-old)/old > g.MaxRegressPct
}

// diffSnapshots prints the per-benchmark deltas between two snapshots.
// With a non-nil gate it also fails (returns an error) when a gated
// benchmark regresses past the configured threshold.
func diffSnapshots(oldPath, newPath string, gate *gateConfig) error {
	oldSnap, oldM, err := readSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, newM, err := readSnapshot(newPath)
	if err != nil {
		return err
	}
	fmt.Printf("old: %s (%s, %s)\n", oldPath, oldSnap.Date, oldSnap.Go)
	fmt.Printf("new: %s (%s, %s)\n\n", newPath, newSnap.Date, newSnap.Go)

	names := make([]string, 0, len(oldM))
	for n := range oldM {
		names = append(names, n)
	}
	for n := range newM {
		if _, ok := oldM[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var failures []string
	fmt.Printf("%-32s %-10s %14s %14s %9s\n", "BENCHMARK", "METRIC", "OLD", "NEW", "DELTA")
	for _, name := range names {
		om, oOK := oldM[name]
		nm, nOK := newM[name]
		gated := gate != nil && gate.Pattern.MatchString(name)
		switch {
		case !nOK:
			u, v := primaryMetric(om)
			fmt.Printf("%-32s %-10s %14s %14s %9s\n", name, u, v, "(gone)", "-")
			if gated {
				failures = append(failures, fmt.Sprintf("%s: gated benchmark missing from %s", name, newPath))
			}
			continue
		case !oOK:
			u, v := primaryMetric(nm)
			fmt.Printf("%-32s %-10s %14s %14s %9s\n", name, u, "(new)", v, "-")
			continue
		}
		units := make([]string, 0, len(om))
		for u := range om {
			if _, ok := nm[u]; ok {
				units = append(units, u)
			}
		}
		sortMetrics(units)
		printed := name
		for _, u := range units {
			marker := ""
			if gated && gate.regression(u, om[u], nm[u]) {
				marker = "  << REGRESSION"
				failures = append(failures, fmt.Sprintf("%s %s: %s -> %s (%s)",
					name, u, fmtVal(om[u]), fmtVal(nm[u]), fmtDelta(om[u], nm[u])))
			}
			fmt.Printf("%-32s %-10s %14s %14s %9s%s\n",
				printed, u, fmtVal(om[u]), fmtVal(nm[u]), fmtDelta(om[u], nm[u]), marker)
			printed = "" // print the benchmark name once per group
		}
	}
	if len(failures) > 0 {
		fmt.Printf("\n%d gated regression(s) beyond %.0f%%:\n", len(failures), gate.MaxRegressPct)
		for _, f := range failures {
			fmt.Println("  " + f)
		}
		return fmt.Errorf("%d gated benchmark regression(s)", len(failures))
	}
	return nil
}

// primaryMetric picks the representative metric of a one-sided row (a
// benchmark present in only one snapshot): the best-ranked unit actually
// measured, rather than fabricating a zero for a missing "ns/op".
func primaryMetric(m map[string]float64) (unit, val string) {
	if len(m) == 0 {
		return "-", "-"
	}
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sortMetrics(units)
	return units[0], fmtVal(m[units[0]])
}

func fmtVal(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// fmtDelta renders the relative change; negative is an improvement for
// every unit go test emits (time, bytes, allocations). A zero baseline —
// the repo pins 0 allocs/op and 0 B/op on its hot paths — has no relative
// change, so any regression off it is reported as an absolute delta
// instead of NaN% or +Inf%.
func fmtDelta(old, new float64) string {
	switch {
	case old == new:
		return "0.0%"
	case old == 0:
		return "+" + fmtVal(new) + " (was 0)"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}
