// Command benchtab prints the experiment tables recorded in EXPERIMENTS.md
// — wall-clock scaling of the determinism tests (E1), per-symbol matching
// cost of every engine on one workload (E3–E5 summary), numeric-bound
// independence (E7), and the synthetic DTD corpus statistics (E9) — and
// diffs the BENCH_<date>.json snapshots `make bench` writes, so the
// performance trajectory is comparable PR over PR.
//
// Usage:
//
//	benchtab [-exp e1,e5,e7,e9]
//	benchtab -diff OLD.json NEW.json
//
// Diff mode parses the `go test -bench` output embedded in both snapshots
// and reports the per-benchmark delta of every shared metric (ns/op,
// B/op, allocs/op, ns/sym, …).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"regexp"
	"strings"
	"time"

	"dregex/internal/ast"
	"dregex/internal/determinism"
	"dregex/internal/follow"
	"dregex/internal/glushkov"
	"dregex/internal/match"
	"dregex/internal/match/colored"
	"dregex/internal/match/kore"
	"dregex/internal/match/pathdecomp"
	"dregex/internal/match/table"
	"dregex/internal/numeric"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
	"dregex/internal/words"
)

func main() {
	exps := flag.String("exp", "e1,e5,e7,e9", "comma-separated experiments")
	diff := flag.Bool("diff", false, "diff two BENCH_*.json snapshots: benchtab -diff OLD.json NEW.json")
	gatePat := flag.String("gate", "", "with -diff: regexp of benchmarks gated against regression (CI fails the diff when one regresses)")
	maxRegress := flag.Float64("max-regress", 25, "with -diff -gate: largest tolerated regression in percent (zero baselines tolerate none)")
	gateUnits := flag.String("gate-units", "", "with -diff -gate: comma-separated metrics to gate (default ns/op,ns/sym,B/op,allocs/op; CI passes B/op,allocs/op — time is machine-dependent)")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchtab -diff [-gate REGEXP [-max-regress PCT]] OLD.json NEW.json")
			os.Exit(2)
		}
		var gate *gateConfig
		if *gatePat != "" {
			re, err := regexp.Compile(*gatePat)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error: bad -gate pattern:", err)
				os.Exit(2)
			}
			gate = &gateConfig{Pattern: re, MaxRegressPct: *maxRegress}
			if *gateUnits != "" {
				gate.Units = map[string]bool{}
				for _, u := range strings.Split(*gateUnits, ",") {
					gate.Units[strings.TrimSpace(u)] = true
				}
			}
		}
		if err := diffSnapshots(flag.Arg(0), flag.Arg(1), gate); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	for _, e := range strings.Split(*exps, ",") {
		switch strings.TrimSpace(e) {
		case "e1":
			e1()
		case "e5":
			e5()
		case "e7":
			e7()
		case "e9":
			e9()
		default:
			fmt.Printf("unknown experiment %q\n", e)
		}
	}
}

func timeIt(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

// E1: linear determinism test vs Glushkov/BK on E = (a1+…+am)*.
func e1() {
	fmt.Println("E1: determinism on mixed content E=(a1+…+am)*  (Thm 3.5 vs BK baseline)")
	fmt.Printf("%10s %14s %14s %10s\n", "m", "linear", "glushkov-BK", "ratio")
	for _, m := range []int{1024, 2048, 4096, 8192, 16384} {
		alpha := ast.NewAlphabet()
		tr, err := parsetree.Build(ast.Normalize(wordgen.MixedContent(alpha, m)), alpha)
		if err != nil {
			panic(err)
		}
		fol := follow.New(tr)
		lin := timeIt(func() {
			if !determinism.Check(tr, fol).Deterministic {
				panic("must be deterministic")
			}
		})
		var bk time.Duration
		if m <= 8192 {
			bk = timeIt(func() {
				if glushkov.CheckBK(tr) != nil {
					panic("must be deterministic")
				}
			})
			fmt.Printf("%10d %14v %14v %9.1fx\n", m, lin, bk, float64(bk)/float64(lin))
		} else {
			fmt.Printf("%10d %14v %14s %10s\n", m, lin, "(skipped)", "-")
		}
	}
	fmt.Println()
}

// E5-summary: per-symbol matching cost of every deterministic engine on one
// shared workload.
func e5() {
	fmt.Println("E5: per-symbol transition cost by engine (shared 100k-node workload)")
	r := rand.New(rand.NewSource(4))
	alpha := ast.NewAlphabet()
	// Starred 3-occurrence block over ~30k symbols: ~90k positions, and
	// the star guarantees arbitrarily long words.
	e := ast.Star(wordgen.KOccurrence(alpha, 30000, 3))
	tr, err := parsetree.Build(ast.Normalize(e), alpha)
	if err != nil {
		panic(err)
	}
	fol := follow.New(tr)
	w, ok := words.RandomWord(r, fol, 1<<15, 0.0001)
	if !ok || len(w) < 1<<14 {
		panic("no word")
	}
	sims := []struct {
		name string
		sim  match.TransitionSim
	}{}
	k := kore.New(tr, fol)
	sims = append(sims, struct {
		name string
		sim  match.TransitionSim
	}{fmt.Sprintf("kore (k=%d)", k.K), k})
	if cv, err := colored.New(tr, fol, colored.Options{}); err == nil {
		sims = append(sims, struct {
			name string
			sim  match.TransitionSim
		}{"colored-veb", cv})
	}
	if cb, err := colored.New(tr, fol, colored.Options{BinarySearch: true}); err == nil {
		sims = append(sims, struct {
			name string
			sim  match.TransitionSim
		}{"colored-binary", cb})
	}
	if pd, err := pathdecomp.New(tr, fol); err == nil {
		sims = append(sims, struct {
			name string
			sim  match.TransitionSim
		}{fmt.Sprintf("pathdecomp (ce=%d)", pd.CE), pd})
	}
	if cl, err := colored.NewClimbing(tr, fol); err == nil {
		sims = append(sims, struct {
			name string
			sim  match.TransitionSim
		}{"climbing", cl})
	}
	fmt.Printf("%22s %12s  (word length %d)\n", "engine", "ns/symbol", len(w))
	for _, s := range sims {
		reps := 5
		d := timeIt(func() {
			for i := 0; i < reps; i++ {
				if !match.Word(s.sim, w) {
					panic("must match")
				}
			}
		})
		fmt.Printf("%22s %12.1f\n", s.name, float64(d.Nanoseconds())/float64(reps*len(w)))
	}
	fmt.Printf("%22s %12s  (workload exceeds the %d-entry table budget)\n",
		"table", "-", table.DefaultBudget)
	fmt.Println()
	e5Table()
}

// e5Table is the table-eligible companion workload: the same starred
// 3-occurrence family sized to fit the dense-table budget, where the
// flat-table tier applies — the common case of real content models.
func e5Table() {
	fmt.Println("E5b: per-symbol transition cost with the dense-table tier (2k-node workload)")
	r := rand.New(rand.NewSource(4))
	alpha := ast.NewAlphabet()
	e := ast.Star(wordgen.KOccurrence(alpha, 200, 3))
	tr, err := parsetree.Build(ast.Normalize(e), alpha)
	if err != nil {
		panic(err)
	}
	fol := follow.New(tr)
	w, ok := words.RandomWord(r, fol, 1<<15, 0.0001)
	if !ok || len(w) < 1<<14 {
		panic("no word")
	}
	tab, err := table.New(tr, fol, 0)
	if err != nil {
		panic(err)
	}
	type row struct {
		name string
		run  func() bool
	}
	rows := []row{
		{"table (direct)", func() bool { return tab.MatchWord(w) }},
		{"table (sim)", func() bool { return match.Word(tab, w) }},
	}
	k := kore.New(tr, fol)
	rows = append(rows, row{fmt.Sprintf("kore (k=%d)", k.K), func() bool { return match.Word(k, w) }})
	if cv, err := colored.New(tr, fol, colored.Options{}); err == nil {
		rows = append(rows, row{"colored-veb", func() bool { return match.Word(cv, w) }})
	}
	if pd, err := pathdecomp.New(tr, fol); err == nil {
		rows = append(rows, row{fmt.Sprintf("pathdecomp (ce=%d)", pd.CE), func() bool { return match.Word(pd, w) }})
	}
	fmt.Printf("%22s %12s  (word length %d, %d table entries)\n",
		"engine", "ns/symbol", len(w), tab.Entries())
	for _, s := range rows {
		reps := 20
		d := timeIt(func() {
			for i := 0; i < reps; i++ {
				if !s.run() {
					panic("must match")
				}
			}
		})
		fmt.Printf("%22s %12.1f\n", s.name, float64(d.Nanoseconds())/float64(reps*len(w)))
	}
	fmt.Println()
}

// E7: numeric determinism cost vs bound magnitude.
func e7() {
	fmt.Println("E7: numeric occurrence determinism, 200 counted factors (§3.3)")
	fmt.Printf("%14s %14s\n", "maxOccurs", "linear check")
	for _, bound := range []int{4, 1024, 1 << 20, 1 << 30} {
		alpha := ast.NewAlphabet()
		parts := make([]*ast.Node, 0, 200)
		for i := 0; i < 200; i++ {
			parts = append(parts, ast.Opt(ast.Iter(
				ast.Sym(alpha.Intern(wordgen.SymbolName(i))), 2, bound)))
		}
		e := ast.CatAll(parts...)
		d := timeIt(func() {
			c, err := numeric.Compile(e, alpha)
			if err != nil || !c.IsDeterministic() {
				panic("must be deterministic")
			}
		})
		fmt.Printf("%14d %14v\n", bound, d)
	}
	fmt.Println()
}

// E9: synthetic DTD corpus with the real-world proportions reported in the
// paper's related work (98% 1-ORE, 90% CHARE, alternation depth ≤ 4).
func e9() {
	fmt.Println("E9: synthetic DTD corpus (target: 98% 1-ORE, 90% CHARE, ce ≤ 4)")
	r := rand.New(rand.NewSource(7))
	const n = 2000
	var oneORE, chare, det, ceLE4 int
	maxCE := 0
	total := time.Duration(0)
	for i := 0; i < n; i++ {
		alpha := ast.NewAlphabet()
		var e *ast.Node
		isChare := i%10 != 0
		if isChare {
			e = ast.DesugarPlus(wordgen.CHARE(r, alpha, 2+r.Intn(5), 4))
			chare++
		} else if i%100 < 98 {
			e = wordgen.RandomDeterministicExpr(r, alpha, 10, 24, false)
		} else {
			e = wordgen.RandomDeterministicExpr(r, alpha, 10, 24, true)
		}
		// Classify before DesugarPlus: e+ is a 1-ORE construct.
		if ast.MaxOccurrence(e) <= 1 || isChare {
			oneORE++
		}
		ce := ast.AlternationDepth(e)
		if ce <= 4 {
			ceLE4++
		}
		if ce > maxCE {
			maxCE = ce
		}
		tr, err := parsetree.Build(ast.Normalize(e), alpha)
		if err != nil {
			panic(err)
		}
		fol := follow.New(tr)
		total += timeIt(func() {
			if determinism.Check(tr, fol).Deterministic {
				det++
			}
		})
	}
	fmt.Printf("  models: %d   1-ORE: %.1f%%   CHARE: %.1f%%   ce≤4: %.1f%% (max ce %d)\n",
		n, 100*float64(oneORE)/n, 100*float64(chare)/n, 100*float64(ceLE4)/n, maxCE)
	fmt.Printf("  deterministic: %.1f%%   total check time: %v (%.1fµs/model)\n",
		100*float64(det)/n, total, float64(total.Microseconds())/n)
	fmt.Println()
}
