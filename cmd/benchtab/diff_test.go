package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func writeSnapshot(t *testing.T, dir, name, bench string) string {
	t.Helper()
	data, err := json.Marshal(snapshot{Date: "20260101", Go: "go1.24.0", Bench: bench})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns what
// it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = saved
	out := <-done
	if ferr != nil {
		t.Fatalf("diffSnapshots: %v", ferr)
	}
	return out
}

// Regression: the repo pins 0 allocs/op and 0 B/op baselines; a regression
// off such a baseline used to print +inf (and an all-zero division path
// risked NaN%). It must print an absolute delta instead, and benchmarks
// present in only one snapshot must render without fabricating zeros.
func TestDiffZeroBaseline(t *testing.T) {
	dir := t.TempDir()
	oldBench := `goos: linux
BenchmarkMatchCached-8   5000000   240.0 ns/op   0 B/op   0 allocs/op
BenchmarkGoneSoon-8      1000      900 ns/op
PASS`
	newBench := `goos: linux
BenchmarkMatchCached-8   5000000   250.0 ns/op   16 B/op   2 allocs/op
BenchmarkBrandNew-8      1000      5 allocs/op
PASS`
	oldPath := writeSnapshot(t, dir, "old.json", oldBench)
	newPath := writeSnapshot(t, dir, "new.json", newBench)

	out := captureStdout(t, func() error { return diffSnapshots(oldPath, newPath, nil) })

	for _, bad := range []string{"NaN", "Inf", "inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("output contains %q:\n%s", bad, out)
		}
	}
	if !strings.Contains(out, "+2 (was 0)") {
		t.Errorf("allocs/op zero baseline not reported as absolute delta:\n%s", out)
	}
	if !strings.Contains(out, "+16 (was 0)") {
		t.Errorf("B/op zero baseline not reported as absolute delta:\n%s", out)
	}
	if !strings.Contains(out, "+4.2%") {
		t.Errorf("ns/op relative delta missing:\n%s", out)
	}
	if !strings.Contains(out, "(gone)") || !strings.Contains(out, "(new)") {
		t.Errorf("one-sided benchmarks not marked:\n%s", out)
	}
	// The one-sided new benchmark has no ns/op; its real metric must show.
	if !strings.Contains(out, "allocs/op") {
		t.Errorf("one-sided benchmark's measured metric missing:\n%s", out)
	}
}

func TestFmtDelta(t *testing.T) {
	cases := []struct {
		old, new float64
		want     string
	}{
		{0, 0, "0.0%"},
		{0, 2, "+2 (was 0)"},
		{100, 150, "+50.0%"},
		{100, 50, "-50.0%"},
	}
	for _, c := range cases {
		if got := fmtDelta(c.old, c.new); got != c.want {
			t.Errorf("fmtDelta(%v, %v) = %q, want %q", c.old, c.new, got, c.want)
		}
	}
}

// TestDiffGate exercises the CI regression gate: a gated benchmark whose
// time regresses past the threshold (or whose pinned-zero allocation count
// moves at all) fails the diff; ungated benchmarks and tolerable drift do
// not.
func TestDiffGate(t *testing.T) {
	dir := t.TempDir()
	oldBench := `goos: linux
BenchmarkMatchWordInterned-8   5000000   240.0 ns/op   0 B/op   0 allocs/op
BenchmarkMatcherCached-8       5000000   100.0 ns/op   0 B/op   0 allocs/op
BenchmarkUnrelated-8           1000      900 ns/op
PASS`
	okBench := `goos: linux
BenchmarkMatchWordInterned-8   5000000   260.0 ns/op   0 B/op   0 allocs/op
BenchmarkMatcherCached-8       5000000   110.0 ns/op   0 B/op   0 allocs/op
BenchmarkUnrelated-8           1000      9000 ns/op
PASS`
	timeRegress := `goos: linux
BenchmarkMatchWordInterned-8   5000000   400.0 ns/op   0 B/op   0 allocs/op
BenchmarkMatcherCached-8       5000000   110.0 ns/op   0 B/op   0 allocs/op
PASS`
	allocRegress := `goos: linux
BenchmarkMatchWordInterned-8   5000000   240.0 ns/op   0 B/op   2 allocs/op
BenchmarkMatcherCached-8       5000000   100.0 ns/op   0 B/op   0 allocs/op
PASS`
	goneBench := `goos: linux
BenchmarkMatcherCached-8       5000000   100.0 ns/op   0 B/op   0 allocs/op
PASS`
	oldPath := writeSnapshot(t, dir, "old.json", oldBench)

	gate := func() *gateConfig {
		return &gateConfig{
			Pattern:       regexp.MustCompile("MatchWordInterned|MatcherCached"),
			MaxRegressPct: 25,
		}
	}
	run := func(newBench string) error {
		newPath := writeSnapshot(t, dir, "new.json", newBench)
		var err error
		captureStdout(t, func() error { err = diffSnapshots(oldPath, newPath, gate()); return nil })
		return err
	}
	if err := run(okBench); err != nil {
		t.Errorf("tolerable drift (<=25%%, 10x on ungated) must pass, got %v", err)
	}
	if err := run(timeRegress); err == nil {
		t.Error("67%% ns/op regression on a gated benchmark must fail the diff")
	}
	if err := run(allocRegress); err == nil {
		t.Error("pinned 0 allocs/op moving to 2 must fail the diff regardless of percent")
	}
	if err := run(goneBench); err == nil {
		t.Error("a gated benchmark missing from the new snapshot must fail the diff")
	}
}

// TestDiffGateUnits: restricting the gate to allocation metrics (the CI
// configuration — time is machine-dependent) ignores even large time
// regressions while still catching allocation ones.
func TestDiffGateUnits(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", `goos: linux
BenchmarkMatchWordInterned-8   5000000   240.0 ns/op   0 B/op   0 allocs/op
PASS`)
	newPath := writeSnapshot(t, dir, "new.json", `goos: linux
BenchmarkMatchWordInterned-8   5000000   900.0 ns/op   0 B/op   0 allocs/op
PASS`)
	gate := &gateConfig{
		Pattern:       regexp.MustCompile("MatchWordInterned"),
		MaxRegressPct: 25,
		Units:         map[string]bool{"B/op": true, "allocs/op": true},
	}
	var err error
	captureStdout(t, func() error { err = diffSnapshots(oldPath, newPath, gate); return nil })
	if err != nil {
		t.Errorf("time-only regression must pass an allocation-only gate, got %v", err)
	}
	newPath = writeSnapshot(t, dir, "new2.json", `goos: linux
BenchmarkMatchWordInterned-8   5000000   240.0 ns/op   64 B/op   3 allocs/op
PASS`)
	captureStdout(t, func() error { err = diffSnapshots(oldPath, newPath, gate); return nil })
	if err == nil {
		t.Error("allocation regression must fail an allocation-only gate")
	}
}
