// Command dregex checks determinism of regular expressions and matches
// words against them, exposing every algorithm of the paper.
//
// Usage:
//
//	dregex [flags] EXPR [WORD...]
//
// With math syntax (default) each WORD is a string of single-rune symbols;
// with -dtd each WORD is a comma-separated list of names. With -stdin,
// standard input is matched in one streaming pass: as single-rune symbols
// (whitespace skipped, no per-rune allocation) under math syntax, or as
// whitespace-separated symbol names under -dtd.
//
// Flags:
//
//	-dtd        parse EXPR as a DTD content model
//	-algo A     matching algorithm: auto, table, kore, colored,
//	            colored-binary, pathdecomp, starfree-scan, climbing, nfa
//	-numeric    allow numeric occurrence indicators e{m,n} (§3.3 engine)
//	-explain    print a counterexample word for nondeterministic EXPR
//	-parse      print the parse tree (accepted) or expected-next symbols
//	            (rejected) for each WORD instead of a bare verdict
//	-stats      print structural statistics, plus an end-of-run metrics
//	            summary (words/sec, engine-tier selections) on stderr
//	-stdin      match tokens from standard input
//	-lex        treat EXPR as a rule set "tag=expr;tag=expr" (math syntax)
//	            and tokenize each WORD (and -stdin) by longest match
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dregex"
	"dregex/internal/cli"
)

func main() {
	var (
		dtdSyntax = flag.Bool("dtd", false, "parse EXPR as a DTD content model")
		algoName  = flag.String("algo", "auto", "matching algorithm: auto, table, kore, colored, colored-binary, pathdecomp, starfree-scan, climbing, nfa")
		numericOn = flag.Bool("numeric", false, "allow numeric occurrence indicators")
		explain   = flag.Bool("explain", false, "explain nondeterminism")
		parseTree = flag.Bool("parse", false, "print parse trees / expected-next symbols per word")
		stats     = flag.Bool("stats", false, "print structural statistics")
		stdin     = flag.Bool("stdin", false, "match tokens from standard input")
		lexMode   = flag.Bool("lex", false, `treat EXPR as lexer rules "tag=expr;tag=expr"`)
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: dregex [flags] EXPR [WORD...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src := flag.Arg(0)
	syntax := dregex.Math
	if *dtdSyntax {
		syntax = dregex.DTD
	}

	if *lexMode {
		runLex(src, flag.Args()[1:], *stdin)
		return
	}

	// Compilation goes through a Cache for parity with how library
	// consumers are expected to compile (a one-shot CLI run sees no
	// reuse; long-lived embedders of the same code path do).
	cache := dregex.NewCache(256)

	if *numericOn {
		runNumeric(cache, src, syntax, flag.Args()[1:], *dtdSyntax)
		return
	}

	e, err := cache.Get(src, syntax)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("expression: %s\n", e)
	fmt.Printf("deterministic: %v\n", e.IsDeterministic())
	if !e.IsDeterministic() && *explain {
		if amb := e.Explain(); amb != nil {
			fmt.Printf("ambiguity: rule %s on symbol %q, witness word %s\n",
				amb.Rule, amb.Symbol, strings.Join(amb.Word, " "))
		}
	}
	if *stats {
		st := e.Stats()
		fmt.Printf("size=%d positions=%d sigma=%d k=%d alternation-depth=%d star-free=%v depth=%d\n",
			st.Size, st.Positions, st.Sigma, st.K, st.AlternationDepth, st.StarFree, st.Depth)
	}

	words := flag.Args()[1:]
	if len(words) == 0 && !*stdin {
		return
	}
	runStart := time.Now()
	algo, ok := parseAlgo(*algoName)
	if !ok {
		fmt.Fprintf(os.Stderr, "error: unknown algorithm %q\n", *algoName)
		os.Exit(2)
	}
	m, err := e.Matcher(algo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("algorithm: %v\n", m.Algorithm())
	for _, w := range words {
		word := []string{}
		if *dtdSyntax {
			word = splitWord(w)
		} else {
			for _, r := range w {
				word = append(word, string(r))
			}
		}
		if *parseTree {
			res, perr := m.Parse(word)
			if perr != nil {
				fmt.Fprintln(os.Stderr, "error:", perr)
				os.Exit(1)
			}
			if res.Accepted {
				fmt.Printf("%-30q true  %s\n", w, res.TreeString())
			} else {
				fmt.Printf("%-30q false failed-at=%d expected=[%s]\n",
					w, res.FailedAt, strings.Join(res.Expected, " "))
			}
			continue
		}
		fmt.Printf("%-30q %v\n", w, m.MatchSymbols(word))
	}
	if *stdin {
		// Math notation streams runes (Stream.FeedRune: no per-symbol
		// allocation); DTD notation streams whitespace-separated names.
		var okStream bool
		if *dtdSyntax {
			okStream, err = m.MatchReaderTokens(os.Stdin)
		} else {
			okStream, err = m.MatchReaderRunes(os.Stdin)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("stdin: %v\n", okStream)
	}
	if *stats {
		// The one-shot metrics summary: same encoder as dregexd's /metrics
		// (see internal/obs), with the run's engine-tier selections.
		n := len(words)
		if *stdin {
			n++
		}
		rs := cli.RunStats{Unit: "words", Count: n, Elapsed: time.Since(runStart)}
		if err := rs.Write(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
}

// runLex compiles a ";"-separated "tag=expr" rule set (math syntax, since
// lexing is per rune) and tokenizes each word argument — and stdin when
// requested — by longest match, printing one "POS TAG LEXEME" line per
// token.
func runLex(src string, words []string, stdin bool) {
	var rules []dregex.LexRule
	for _, spec := range strings.Split(src, ";") {
		if strings.TrimSpace(spec) == "" {
			continue
		}
		tag, exprSrc, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "error: lexer rule %q is not tag=expr\n", spec)
			os.Exit(2)
		}
		e, err := dregex.Compile(strings.TrimSpace(exprSrc), dregex.Math)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		rules = append(rules, dregex.LexRule{Tag: strings.TrimSpace(tag), Expr: e})
	}
	l, err := dregex.NewLexer(rules...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	printTok := func(t dregex.Token) error {
		_, err := fmt.Printf("%6d  %-12s %q\n", t.Pos, t.Tag, t.Lexeme)
		return err
	}
	for _, w := range words {
		fmt.Printf("input %q:\n", w)
		toks, err := l.Tokens(w)
		for _, t := range toks {
			printTok(t)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	if stdin {
		if err := l.LexReader(os.Stdin, printTok); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
}

func runNumeric(cache *dregex.Cache, src string, syntax dregex.Syntax, words []string, dtdSyntax bool) {
	e, err := cache.GetNumeric(src, syntax)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("deterministic: %v\n", e.IsDeterministic())
	if !e.IsDeterministic() {
		fmt.Printf("rule: %s\n", e.Rule())
	}
	st := e.IterationStats()
	fmt.Printf("iterations=%d flexible=%d unbounded=%v\n", st.Iterations, st.Flexible, st.Unbounded)
	for _, w := range words {
		var verdict bool
		if dtdSyntax {
			verdict = e.MatchSymbols(splitWord(w))
		} else {
			verdict = e.MatchText(w)
		}
		fmt.Printf("%-30q %v\n", w, verdict)
	}
}

// splitWord splits a comma- or space-separated word of names.
func splitWord(w string) []string {
	f := strings.FieldsFunc(w, func(r rune) bool { return r == ',' || r == ' ' })
	out := f[:0]
	for _, s := range f {
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

func parseAlgo(name string) (dregex.Algorithm, bool) {
	switch name {
	case "auto":
		return dregex.Auto, true
	case "table":
		return dregex.Table, true
	case "kore":
		return dregex.KORE, true
	case "colored":
		return dregex.Colored, true
	case "colored-binary":
		return dregex.ColoredBinary, true
	case "pathdecomp":
		return dregex.PathDecomp, true
	case "starfree-scan":
		return dregex.StarFreeScan, true
	case "climbing":
		return dregex.Climbing, true
	case "nfa":
		return dregex.NFA, true
	}
	return dregex.Auto, false
}
