// Command xsdvalid validates XML documents against an XML Schema, using
// the paper's §3.3 counter machinery: content models with
// minOccurs/maxOccurs compile into counted expressions whose determinism
// (the Unique Particle Attribution constraint) is decided in time
// independent of the bound magnitudes, and each element's child sequence
// is checked in one streaming pass with O(1) configurations per open
// element. Documents are validated concurrently by a worker pool sharing
// one set of compiled models, so corpus runs amortize every compile.
//
// Usage:
//
//	xsdvalid -xsd FILE.xsd [-workers N] [-json] [-q] [-stats] PATH...
//
// Each PATH is an XML file or a directory walked recursively for *.xml
// files. A schema whose content models violate Unique Particle
// Attribution is rejected up front, with the counterexample diagnosis for
// each offending type.
//
// Exit status: 0 all documents valid, 1 any invalid or unreadable (or a
// rejected schema), 2 usage error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dregex"
	"dregex/internal/cli"
	"dregex/internal/xsd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is main minus process concerns, so CLI behavior is testable; reports
// still go to stdout (via cli.PrintReports), diagnostics to stderr.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("xsdvalid", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		xsdPath = fs.String("xsd", "", "XML Schema file (required)")
		workers = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		jsonOut = fs.Bool("json", false, "emit a JSON report")
		quiet   = fs.Bool("q", false, "text mode: only report invalid documents and the summary")
		stats   = fs.Bool("stats", false, "print an end-of-run metrics summary (docs/sec, bytes/sec, engine tiers) to stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *xsdPath == "" || fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: xsdvalid -xsd FILE.xsd [-workers N] [-json] [-q] PATH...")
		return 2
	}
	paths := cli.CollectFiles(fs.Args(), ".xml")
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "error: no XML documents found")
		return 1
	}

	data, err := os.ReadFile(*xsdPath)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	// One cache for the whole run: every distinct content model compiles
	// exactly once however many types or schema reloads reuse it.
	s, err := xsd.ParseWithCache(data, dregex.NewCache(4096))
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	// Nondeterministic content models cannot drive a one-pass validator;
	// reject the schema with the full diagnosis rather than skipping the
	// affected elements silently.
	if issues := s.Check(); len(issues) > 0 {
		fmt.Fprintf(stderr, "error: %s is not a valid schema: %d content model(s) violate Unique Particle Attribution\n",
			*xsdPath, len(issues))
		for _, is := range issues {
			fmt.Fprintf(stderr, "  %s: %s\n", is.Type, is.Msg)
		}
		return 1
	}

	start := time.Now()
	results := xsd.NewValidator(s, *workers).ValidateFiles(paths)
	elapsed := time.Since(start)
	reports := make([]cli.DocReport[xsd.ValidationError], len(results))
	for i, r := range results {
		reports[i] = cli.DocReport[xsd.ValidationError]{
			Path: r.Name, Valid: r.Valid(), Errors: r.Errors,
		}
		if r.Err != nil {
			reports[i].Error = r.Err.Error()
		}
	}
	invalid, err := cli.PrintReports(reports, *jsonOut, *quiet)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	if *stats {
		rs := cli.RunStats{
			Count:   len(paths),
			Invalid: invalid,
			Bytes:   cli.SumFileSizes(paths),
			Elapsed: elapsed,
		}
		if err := rs.Write(stderr); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
	}
	if invalid > 0 {
		return 1
	}
	return 0
}
