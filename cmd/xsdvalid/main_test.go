package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// runQuiet runs the CLI with stdout captured (reports go to real stdout
// via cli.PrintReports).
func runQuiet(t *testing.T, args ...string) (int, string) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		b.ReadFrom(r)
		done <- b.String()
	}()
	var stderr bytes.Buffer
	code := run(args, &stderr)
	w.Close()
	os.Stdout = saved
	return code, <-done + stderr.String()
}

const testXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="order">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="item" minOccurs="2" maxOccurs="3"/>
        <xs:element name="total"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="item"/>
  <xs:element name="total"/>
</xs:schema>`

// Counter-engine validation failures carry expected-next hints too: one
// item is too few, so at </order> the only legal continuation is a second
// item — reported in the text suffix and the JSON "expected" array.
func TestXsdvalidExpectedHints(t *testing.T) {
	dir := t.TempDir()
	xsdPath := filepath.Join(dir, "order.xsd")
	if err := os.WriteFile(xsdPath, []byte(testXSD), 0o644); err != nil {
		t.Fatal(err)
	}
	docPath := filepath.Join(dir, "order.xml")
	if err := os.WriteFile(docPath, []byte(`<order><item/><total/></order>`), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out := runQuiet(t, "-xsd", xsdPath, docPath)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !bytes.Contains([]byte(out), []byte("(expected one of: item)")) {
		t.Errorf("text report lacks expected-next hint:\n%s", out)
	}

	code, out = runQuiet(t, "-json", "-xsd", xsdPath, docPath)
	if code != 1 {
		t.Fatalf("json: exit = %d, want 1; output:\n%s", code, out)
	}
	var reports []map[string]any
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("json report does not parse: %v\n%s", err, out)
	}
	errs := reports[0]["errors"].([]any)
	first := errs[0].(map[string]any)
	if got, _ := first["expected"].([]any); len(got) != 1 || got[0] != "item" {
		t.Errorf("json expected field = %v, want [item]; full error: %v", got, first)
	}

	// A valid document still exits 0 through the refactored run().
	goodPath := filepath.Join(dir, "good.xml")
	if err := os.WriteFile(goodPath, []byte(`<order><item/><item/><total/></order>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := runQuiet(t, "-q", "-xsd", xsdPath, goodPath); code != 0 {
		t.Fatalf("valid doc: exit = %d; output:\n%s", code, out)
	}
}
