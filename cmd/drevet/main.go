// Drevet is the repo's static-analysis suite: five analyzers that
// mechanically enforce the hot-path invariants (span aliasing, pool
// borrow pairing, COW registry immutability, 0-alloc annotations, witness
// nil guards). It speaks the `go vet -vettool=` protocol:
//
//	go build -o bin/drevet ./cmd/drevet
//	go vet -vettool=bin/drevet ./...
//
// or directly: bin/drevet ./...  (re-executes go vet against itself).
// See `make lint`, which runs it over the whole tree.
package main

import "dregex/internal/analysis"

func main() {
	analysis.Main(analysis.All()...)
}
