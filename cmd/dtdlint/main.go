// Command dtdlint checks every content model of a DTD for determinism —
// the XML well-formedness requirement the paper's Theorem 3.5 decides in
// linear time — and reports the structural parameters (occurrence bound k,
// alternation depth c_e) that govern matching complexity.
//
// Usage:
//
//	dtdlint FILE.dtd
package main

import (
	"fmt"
	"os"

	"dregex/internal/dtd"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: dtdlint FILE.dtd")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	d, err := dtd.Parse(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("%-16s %-9s %-14s %3s %3s  %s\n", "ELEMENT", "KIND", "DETERMINISTIC", "k", "ce", "MODEL")
	for _, name := range d.Order {
		el := d.Elements[name]
		k, ce := "-", "-"
		if el.Kind == dtd.Children {
			st := el.Stats() // memoized at compile time
			k = fmt.Sprint(st.K)
			ce = fmt.Sprint(st.AlternationDepth)
		}
		det := "yes"
		if !el.Deterministic {
			det = "NO (" + el.Rule + ")"
		}
		fmt.Printf("%-16s %-9s %-14s %3s %3s  %s\n", name, el.Kind, det, k, ce, el.Model)
	}
	issues := d.Check()
	if len(issues) == 0 {
		fmt.Println("\nno issues")
		return
	}
	fmt.Printf("\n%d issue(s):\n", len(issues))
	for _, is := range issues {
		fmt.Printf("  %s: %s\n", is.Element, is.Msg)
	}
	os.Exit(1)
}
