// Command dtdlint checks every content model of one or many DTDs for
// determinism — the XML well-formedness requirement the paper's Theorem
// 3.5 decides in linear time — and reports the structural parameters
// (occurrence bound k, alternation depth c_e) that govern matching
// complexity. DTD files are parsed concurrently through one shared
// expression cache, so content models repeated across a schema corpus
// compile once.
//
// Usage:
//
//	dtdlint [-workers N] [-json] PATH...
//
// Each PATH is a DTD file or a directory walked recursively for *.dtd
// files. Exit status: 0 no issues, 1 any issue or parse error, 2 usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"dregex"
	"dregex/internal/cli"
	"dregex/internal/dtd"
	"dregex/internal/pool"
)

type elementReport struct {
	Name          string `json:"name"`
	Kind          string `json:"kind"`
	Deterministic bool   `json:"deterministic"`
	Rule          string `json:"rule,omitempty"`
	// K and Ce are set for children models only (a children model can
	// legitimately have ce=0, so absence — not zero — marks "not
	// applicable").
	K     *int   `json:"k,omitempty"`
	Ce    *int   `json:"ce,omitempty"`
	Model string `json:"model"`
	Line  int    `json:"line"`
}

type issueReport struct {
	Element string `json:"element"`
	Msg     string `json:"msg"`
}

type fileReport struct {
	Path     string          `json:"path"`
	Elements []elementReport `json:"elements,omitempty"`
	Issues   []issueReport   `json:"issues,omitempty"`
	Error    string          `json:"error,omitempty"`
}

func main() {
	var (
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		jsonOut = flag.Bool("json", false, "emit a JSON report")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dtdlint [-workers N] [-json] PATH...")
		os.Exit(2)
	}
	paths := cli.CollectFiles(flag.Args(), ".dtd")
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "error: no DTD files found")
		os.Exit(1)
	}

	cache := dregex.NewCache(4096)
	reports := lintAll(paths, cache, *workers)

	bad := 0
	for _, r := range reports {
		if r.Error != "" || len(r.Issues) > 0 {
			bad++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	} else {
		for i, r := range reports {
			if i > 0 {
				fmt.Println()
			}
			printText(r, len(reports) > 1)
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// lintAll parses and checks each DTD on a worker pool; reports[i]
// corresponds to paths[i].
func lintAll(paths []string, cache *dregex.Cache, workers int) []fileReport {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reports := make([]fileReport, len(paths))
	pool.Run(len(paths), workers, func(_, i int) {
		reports[i] = lintOne(paths[i], cache)
	})
	return reports
}

func lintOne(path string, cache *dregex.Cache) fileReport {
	r := fileReport{Path: path}
	data, err := os.ReadFile(path)
	if err != nil {
		r.Error = err.Error()
		return r
	}
	src := string(data)
	d, err := dtd.ParseWithCache(src, cache)
	if err != nil {
		r.Error = err.Error()
		return r
	}
	// Declarations are emitted in document order, so one cursor suffices to
	// compute line numbers in a single pass over the source.
	lastOff, lastLine := 0, 1
	for _, name := range d.Order {
		el := d.Elements[name]
		er := elementReport{
			Name:          name,
			Kind:          el.Kind.String(),
			Deterministic: el.Deterministic,
			Rule:          el.Rule,
			Model:         el.Model,
		}
		lastLine += strings.Count(src[lastOff:el.Offset], "\n")
		lastOff = el.Offset
		er.Line = lastLine
		if el.Kind == dtd.Children {
			st := el.Stats() // memoized at compile time
			k, ce := st.K, st.AlternationDepth
			er.K, er.Ce = &k, &ce
		}
		r.Elements = append(r.Elements, er)
	}
	for _, is := range d.Check() {
		r.Issues = append(r.Issues, issueReport{Element: is.Element, Msg: is.Msg})
	}
	return r
}

func printText(r fileReport, withHeader bool) {
	if withHeader {
		fmt.Printf("== %s\n", r.Path)
	}
	if r.Error != "" {
		fmt.Printf("error: %s\n", r.Error)
		return
	}
	fmt.Printf("%-16s %-9s %-14s %3s %3s  %s\n", "ELEMENT", "KIND", "DETERMINISTIC", "k", "ce", "MODEL")
	for _, el := range r.Elements {
		k, ce := "-", "-"
		if el.K != nil {
			k = fmt.Sprint(*el.K)
			ce = fmt.Sprint(*el.Ce)
		}
		det := "yes"
		if !el.Deterministic {
			det = "NO (" + el.Rule + ")"
		}
		fmt.Printf("%-16s %-9s %-14s %3s %3s  %s\n", el.Name, el.Kind, det, k, ce, el.Model)
	}
	if len(r.Issues) == 0 {
		fmt.Println("no issues")
		return
	}
	fmt.Printf("%d issue(s):\n", len(r.Issues))
	for _, is := range r.Issues {
		fmt.Printf("  %s: %s\n", is.Element, is.Msg)
	}
}
