// Command dtdlint checks every content model of one or many schemas for
// determinism — the XML well-formedness requirement the paper's Theorem
// 3.5 decides in linear time — and reports the structural parameters
// (occurrence bound k, alternation depth c_e) that govern matching
// complexity. Schema files are parsed concurrently through one shared
// expression cache, so content models repeated across a schema corpus
// compile once.
//
// Usage:
//
//	dtdlint [-xsd] [-workers N] [-json] PATH...
//
// Each PATH is a schema file or a directory walked recursively. The
// default mode lints DTDs (*.dtd); with -xsd, XML Schema documents
// (*.xsd) are linted instead — content models with minOccurs/maxOccurs
// counters are checked by the §3.3 linear test (Unique Particle
// Attribution), and violations carry a counterexample diagnosis.
// Exit status: 0 no issues, 1 any issue or parse error, 2 usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"dregex"
	"dregex/internal/cli"
	"dregex/internal/dtd"
	"dregex/internal/pool"
	"dregex/internal/xsd"
)

type elementReport struct {
	Name          string `json:"name"`
	Kind          string `json:"kind"`
	Deterministic bool   `json:"deterministic"`
	Rule          string `json:"rule,omitempty"`
	// K and Ce are set for plain children models only (a children model
	// can legitimately have ce=0, so absence — not zero — marks "not
	// applicable"). Counters and MaxBound are set for numeric (XSD) models
	// instead: the number of counted iterations and the largest finite
	// bound.
	K        *int   `json:"k,omitempty"`
	Ce       *int   `json:"ce,omitempty"`
	Counters *int   `json:"counters,omitempty"`
	MaxBound *int   `json:"maxBound,omitempty"`
	Model    string `json:"model"`
	Line     int    `json:"line"`
}

type issueReport struct {
	Element string `json:"element"`
	Msg     string `json:"msg"`
}

type fileReport struct {
	Path     string          `json:"path"`
	Elements []elementReport `json:"elements,omitempty"`
	Issues   []issueReport   `json:"issues,omitempty"`
	Error    string          `json:"error,omitempty"`
}

func main() {
	var (
		xsdMode = flag.Bool("xsd", false, "lint XML Schema documents (*.xsd) instead of DTDs")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		jsonOut = flag.Bool("json", false, "emit a JSON report")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dtdlint [-xsd] [-workers N] [-json] PATH...")
		os.Exit(2)
	}
	ext, kind := ".dtd", "DTD"
	if *xsdMode {
		ext, kind = ".xsd", "XSD"
	}
	paths := cli.CollectFiles(flag.Args(), ext)
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "error: no %s files found\n", kind)
		os.Exit(1)
	}

	cache := dregex.NewCache(4096)
	reports := lintAll(paths, cache, *workers, *xsdMode)

	bad := 0
	for _, r := range reports {
		if r.Error != "" || len(r.Issues) > 0 {
			bad++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	} else {
		for i, r := range reports {
			if i > 0 {
				fmt.Println()
			}
			printText(r, len(reports) > 1)
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// lintAll parses and checks each schema on a worker pool; reports[i]
// corresponds to paths[i].
func lintAll(paths []string, cache *dregex.Cache, workers int, xsdMode bool) []fileReport {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reports := make([]fileReport, len(paths))
	pool.Run(len(paths), workers, func(_, i int) {
		if xsdMode {
			reports[i] = lintOneXSD(paths[i], cache)
		} else {
			reports[i] = lintOne(paths[i], cache)
		}
	})
	return reports
}

func lintOne(path string, cache *dregex.Cache) fileReport {
	r := fileReport{Path: path}
	data, err := os.ReadFile(path)
	if err != nil {
		r.Error = err.Error()
		return r
	}
	// Element offsets are relative to BOM-stripped text (Parse strips it);
	// strip our copy too so the line cursor below counts the same bytes.
	src := dtd.StripBOM(string(data))
	d, err := dtd.ParseWithCache(src, cache)
	if err != nil {
		r.Error = err.Error()
		return r
	}
	// Declarations are emitted in document order, so one cursor suffices to
	// compute line numbers in a single pass over the source.
	lastOff, lastLine := 0, 1
	for _, name := range d.Order {
		el := d.Elements[name]
		er := elementReport{
			Name:          name,
			Kind:          el.Kind.String(),
			Deterministic: el.Deterministic,
			Rule:          el.Rule,
			Model:         el.Model,
		}
		lastLine += strings.Count(src[lastOff:el.Offset], "\n")
		lastOff = el.Offset
		er.Line = lastLine
		if el.Kind == dtd.Children {
			st := el.Stats() // memoized at compile time
			k, ce := st.K, st.AlternationDepth
			er.K, er.Ce = &k, &ce
		}
		r.Elements = append(r.Elements, er)
	}
	for _, is := range d.Check() {
		r.Issues = append(r.Issues, issueReport{Element: is.Element, Msg: is.Msg})
	}
	return r
}

func lintOneXSD(path string, cache *dregex.Cache) fileReport {
	r := fileReport{Path: path}
	data, err := os.ReadFile(path)
	if err != nil {
		r.Error = err.Error()
		return r
	}
	s, err := xsd.ParseWithCache(data, cache)
	if err != nil {
		r.Error = err.Error()
		return r
	}
	for _, t := range s.AllTypes {
		er := elementReport{
			Name:          t.Name,
			Kind:          t.Kind.String(),
			Deterministic: t.Deterministic,
			Rule:          t.Rule,
			Model:         t.Model,
			Line:          t.Line,
		}
		if t.Kind == xsd.Children {
			if t.Numeric {
				st := t.IterationStats()
				iters, maxb := st.Iterations, int(st.MaxBound)
				er.Counters, er.MaxBound = &iters, &maxb
			} else {
				st := t.Stats()
				k, ce := st.K, st.AlternationDepth
				er.K, er.Ce = &k, &ce
			}
		}
		r.Elements = append(r.Elements, er)
	}
	for _, is := range s.Check() {
		r.Issues = append(r.Issues, issueReport{Element: is.Type, Msg: is.Msg})
	}
	return r
}

func printText(r fileReport, withHeader bool) {
	if withHeader {
		fmt.Printf("== %s\n", r.Path)
	}
	if r.Error != "" {
		fmt.Printf("error: %s\n", r.Error)
		return
	}
	fmt.Printf("%-16s %-9s %-14s %5s %4s  %s\n", "ELEMENT", "KIND", "DETERMINISTIC", "k", "ce", "MODEL")
	for _, el := range r.Elements {
		k, ce := "-", "-"
		switch {
		case el.K != nil:
			k = fmt.Sprint(*el.K)
			ce = fmt.Sprint(*el.Ce)
		case el.Counters != nil:
			// Numeric models report counters instead: k column shows the
			// iteration count prefixed with ⟳, ce the largest bound.
			k = fmt.Sprintf("⟳%d", *el.Counters)
			ce = fmt.Sprint(*el.MaxBound)
		}
		det := "yes"
		if !el.Deterministic {
			det = "NO (" + el.Rule + ")"
		}
		fmt.Printf("%-16s %-9s %-14s %5s %4s  %s\n", el.Name, el.Kind, det, k, ce, el.Model)
	}
	if len(r.Issues) == 0 {
		fmt.Println("no issues")
		return
	}
	fmt.Printf("%d issue(s):\n", len(r.Issues))
	for _, is := range r.Issues {
		fmt.Printf("  %s: %s\n", is.Element, is.Msg)
	}
}
