// Command dregexd is the validation server: a long-running HTTP service
// exposing the deterministic-regular-expression pipeline as JSON
// endpoints, with a hot-reloadable registry of named DTD and XSD schemas.
//
// Usage:
//
//	dregexd [-addr :8480] [-cache 4096] [-max-body 4194304]
//	        [-log off|text|json] [-pprof ADDR]
//	        [-rate N] [-burst N] [-schema-rate N] [-schema-burst N]
//	        [-max-inflight N] [-compile-timeout D] [-validate-timeout D]
//
// Endpoints:
//
//	POST   /v1/compile        determinism verdict, rule, counterexample, stats
//	POST   /v1/match          batch word matching against one expression
//	POST   /v1/validate       validate an XML document against a registered schema
//	PUT    /v1/schemas/{name} register or atomically hot-swap a schema (dtd/xsd)
//	GET    /v1/schemas        list registered schemas
//	GET    /v1/schemas/{name} schema metadata
//	DELETE /v1/schemas/{name} unregister
//	GET    /v1/stats          cache hit/negative stats, per-endpoint counters
//	GET    /metrics           Prometheus text exposition (latency histograms,
//	                          verdict counters, cache gauges, engine tiers)
//	GET    /debug/vars        expvar (includes the same stats snapshot)
//
// With -log text or -log json, every request emits one structured
// access-log line (request id, method, path, status, bytes, duration,
// remote addr, and — for validations — schema and verdict) on stderr; the
// default -log off skips all logging work on the hot path. With -pprof
// ADDR, net/http/pprof is served on its own listener (never on the public
// address).
//
// The -rate/-burst flags arm a global token bucket over the non-admin
// endpoints; -schema-rate/-schema-burst add one bucket per registered
// schema on /v1/validate; -max-inflight bounds concurrently executing
// requests per endpoint class; -compile-timeout and -validate-timeout
// bound one compile wait and one validation run. Shed requests get 429
// (rate) or 503 (capacity/deadline) with a Retry-After header and a
// structured JSON error — see the README's "Overload & resilience"
// section. All are off by default.
//
// All expressions and schema content models compile through one shared
// cache; validation requests reuse pooled per-schema state. The server
// shuts down gracefully on SIGINT/SIGTERM, draining in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dregex"
	"dregex/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("dregexd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8480", "listen address (host:port; :0 picks a free port)")
		cacheSize = fs.Int("cache", 4096, "compiled-expression cache capacity")
		maxBody   = fs.Int64("max-body", server.DefaultMaxBodyBytes, "request body size limit in bytes")
		drain     = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		logMode   = fs.String("log", "off", "access log format: off, text or json (one line per request, on stderr)")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address (own listener; empty disables)")

		rate        = fs.Float64("rate", 0, "global admission rate over compile/match/validate, requests/second (0 disables)")
		burst       = fs.Int("burst", 1, "global rate-bucket depth: requests admitted back-to-back after idle")
		schemaRate  = fs.Float64("schema-rate", 0, "per-schema validate rate, requests/second (0 disables)")
		schemaBurst = fs.Int("schema-burst", 1, "per-schema rate-bucket depth")
		maxInflight = fs.Int("max-inflight", 0, "max concurrently executing requests per endpoint class (0 disables)")
		compileTO   = fs.Duration("compile-timeout", 0, "per-request compile budget (0 disables)")
		validateTO  = fs.Duration("validate-timeout", 0, "per-request validation budget; clients may tighten it with X-Timeout-Ms (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	accessLog, err := buildAccessLog(*logMode, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 2
	}

	srv := server.New(server.Config{
		Cache:        dregex.NewCache(*cacheSize),
		MaxBodyBytes: *maxBody,
		AccessLog:    accessLog,
		Limits: server.Limits{
			Rate:            *rate,
			Burst:           *burst,
			SchemaRate:      *schemaRate,
			SchemaBurst:     *schemaBurst,
			MaxInflight:     *maxInflight,
			CompileTimeout:  *compileTO,
			ValidateTimeout: *validateTO,
		},
	})
	srv.Publish()
	hs := srv.NewHTTPServer(*addr)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	// The resolved address line is the startup handshake: tooling (the
	// smoke test, scripts) reads it to learn the port when -addr :0.
	fmt.Fprintf(stdout, "dregexd listening on %s\n", ln.Addr())

	if *pprofAddr != "" {
		pln, perr := net.Listen("tcp", *pprofAddr)
		if perr != nil {
			fmt.Fprintln(stderr, "error:", perr)
			return 1
		}
		fmt.Fprintf(stdout, "dregexd pprof on %s\n", pln.Addr())
		go http.Serve(pln, pprofMux())
		defer pln.Close()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(stdout, "dregexd: %v: draining (max %s)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "shutdown:", err)
			return 1
		}
		return 0
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		return 0
	}
}

// buildAccessLog maps the -log flag to a slog.Logger on w (nil for "off",
// which keeps the server's logging branch false — zero overhead).
func buildAccessLog(mode string, w *os.File) (*slog.Logger, error) {
	switch mode {
	case "off", "":
		return nil, nil
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log mode %q (want off, text or json)", mode)
}

// pprofMux routes the net/http/pprof handlers on a dedicated mux (the
// package's init also touches DefaultServeMux, but the daemon never
// serves that) — the profiler binds only to the -pprof listener, never
// the public address.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
