//go:build faultinject

package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"dregex/client"
	"dregex/internal/obs"
)

// TestDregexdChaos is the fault-injection suite (make chaos-smoke): it
// builds the real binary with the faultinject tag and the race detector,
// arms every fault point via DREGEX_FAULTS, and hammers it with
// concurrent traffic under tight admission limits while another goroutine
// hot-swaps the schema — then sends SIGTERM mid-load. The contract under
// all of that: every response is either a correct verdict or a
// well-formed error (429 sheds carry Retry-After; injected panics
// surface as structured 500s, never a dead process), the server never
// hangs, and it exits 0 when drained.
func TestDregexdChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping chaos suite")
	}
	bin := filepath.Join(t.TempDir(), "dregexd")
	build := exec.Command("go", "build", "-race", "-tags", "faultinject", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	srv := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-rate", "400", "-burst", "20",
		"-schema-rate", "250", "-schema-burst", "10",
		"-max-inflight", "6",
		"-compile-timeout", "2s",
		"-validate-timeout", "250ms",
		"-drain", "10s",
	)
	// Every fault point armed, each on its own deterministic cadence:
	// stalled body reads, truncated documents, injected compile errors,
	// pool exhaustion, and a mid-validate panic.
	srv.Env = append(srv.Environ(), "DREGEX_FAULTS="+
		"validate.slow-read=every:7,delay:2ms;"+
		"validate.truncate=every:13,arg:24;"+
		"validate.panic=every:41;"+
		"compile.error=every:5;"+
		"pool.exhaust=every:3")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	srv.Stderr = &stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line: %v", sc.Err())
	}
	addr := strings.TrimPrefix(sc.Text(), "dregexd listening on ")
	go func() {
		for sc.Scan() {
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := client.New("http://"+addr, &http.Client{Timeout: 10 * time.Second})
	schema := `<!ELEMENT note (to, body)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT body (#PCDATA)>`
	if _, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(schema)); err != nil {
		t.Fatalf("PutSchema: %v", err)
	}

	goodDoc := `<note><to>alice</to><body>hello</body></note>`
	badDoc := `<note><body>hello</body><to>alice</to></note>`
	httpc := &http.Client{Timeout: 10 * time.Second}

	// checkResponse enforces the chaos contract on one exchange. sigSent
	// relaxes it to also allow transport errors: once SIGTERM lands the
	// listener closes, and refused connections are the OS's business, not
	// a server defect.
	var sigSent atomic.Bool
	var counts [6]atomic.Int64 // ok, invalid, docerr, shed, panic500, compileErr
	checkResponse := func(req *http.Request, wantValid bool, sigSent *atomic.Bool) error {
		resp, err := httpc.Do(req)
		if err != nil {
			if sigSent != nil && sigSent.Load() {
				return nil
			}
			return fmt.Errorf("transport: %w", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			if sigSent != nil && sigSent.Load() {
				return nil
			}
			return fmt.Errorf("reading body: %w", err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var vr client.ValidateResponse
			if req.URL.Path != "/v1/validate" {
				counts[0].Add(1)
				return nil
			}
			if err := json.Unmarshal(body, &vr); err != nil {
				return fmt.Errorf("200 with unparseable body %q: %w", body, err)
			}
			switch {
			case vr.DocError != "":
				// A truncated-body fault fired: the verdict is an honest
				// document error, not a false "valid".
				counts[2].Add(1)
			case vr.Valid != wantValid:
				return fmt.Errorf("wrong verdict: valid=%v want %v (%s)", vr.Valid, wantValid, body)
			case vr.Valid:
				counts[0].Add(1)
			default:
				counts[1].Add(1)
			}
			return nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			var er client.ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				return fmt.Errorf("malformed %d shed body %q (err=%v)", resp.StatusCode, body, err)
			}
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				return fmt.Errorf("429 without Retry-After")
			}
			counts[3].Add(1)
			return nil
		case http.StatusInternalServerError:
			// The injected panic: recovered into a structured 500.
			var er client.ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				return fmt.Errorf("malformed 500 body %q (err=%v)", body, err)
			}
			counts[4].Add(1)
			return nil
		case http.StatusUnprocessableEntity:
			// The injected compile error.
			counts[5].Add(1)
			return nil
		}
		return fmt.Errorf("unexpected status %d: %s", resp.StatusCode, body)
	}

	// Hot-swap goroutine: re-registers the schema continuously while the
	// workers hammer it.
	swapStop := make(chan struct{})
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for i := 0; ; i++ {
			select {
			case <-swapStop:
				return
			default:
			}
			if _, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(schema)); err != nil {
				// Admin rides its own in-flight bound, so a shed swap is
				// fine; after the signal, so is a dropped connection.
				if !client.IsShed(err) && ctx.Err() == nil && !sigSent.Load() {
					t.Errorf("hot swap: %v", err)
					return
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Phase 1: concurrent overload, no signal — every worker checks every
	// response against the contract.
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				var req *http.Request
				var wantValid bool
				switch i % 3 {
				case 0:
					req, _ = http.NewRequestWithContext(ctx, "POST",
						"http://"+addr+"/v1/validate?schema=note", strings.NewReader(goodDoc))
					req.Header.Set("Content-Type", "application/xml")
					wantValid = true
				case 1:
					req, _ = http.NewRequestWithContext(ctx, "POST",
						"http://"+addr+"/v1/validate?schema=note", strings.NewReader(badDoc))
					req.Header.Set("Content-Type", "application/xml")
				case 2:
					req, _ = http.NewRequestWithContext(ctx, "POST",
						"http://"+addr+"/v1/compile",
						strings.NewReader(fmt.Sprintf(`{"expr": "(a%d, b*)"}`, i)))
					req.Header.Set("Content-Type", "application/json")
				}
				if err := checkResponse(req, wantValid, nil); err != nil {
					t.Errorf("worker %d request %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The fault cadences guarantee injections actually happened; fail
	// loudly if the suite silently stopped exercising them.
	if counts[5].Load() == 0 {
		t.Error("no injected compile errors observed")
	}
	if counts[2].Load() == 0 {
		t.Error("no truncated-document verdicts observed")
	}
	if counts[4].Load() == 0 {
		t.Error("no recovered panics observed")
	}
	if counts[3].Load() == 0 {
		t.Error("no load sheds observed — limits too loose for the offered load")
	}

	// The recovered panics are accounted on /metrics, and the process is
	// obviously still alive to serve the scrape.
	mreq, _ := http.NewRequestWithContext(ctx, "GET", "http://"+addr+"/metrics", nil)
	mresp, err := httpc.Do(mreq)
	if err != nil {
		t.Fatalf("metrics after chaos: %v", err)
	}
	exp, err := obs.ParseExposition(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatalf("exposition after chaos: %v", err)
	}
	if v, ok := exp.Get("dregexd_panics_recovered_total"); !ok || int64(v) != counts[4].Load() {
		t.Errorf("panics_recovered_total = %v(%v), want %d", v, ok, counts[4].Load())
	}

	// Phase 2: SIGTERM lands while a second wave is in flight. In-flight
	// requests finish with contract-conforming responses; refused
	// connections after the signal are acceptable.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				req, _ := http.NewRequestWithContext(ctx, "POST",
					"http://"+addr+"/v1/validate?schema=note", strings.NewReader(goodDoc))
				req.Header.Set("Content-Type", "application/xml")
				if err := checkResponse(req, true, &sigSent); err != nil {
					t.Errorf("drain worker %d request %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	sigSent.Store(true)
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(swapStop)
	swapWG.Wait()

	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("server exit: %v\nstderr:\n%s", err, &stderr)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server did not drain within 20s")
	}
	// The race detector writes to stderr and forces a nonzero exit; a
	// clean exit plus no DATA RACE marker means the concurrent chaos ran
	// race-free.
	if s := stderr.String(); strings.Contains(s, "DATA RACE") || strings.Contains(s, "panic:") {
		t.Errorf("server stderr reports a race or unrecovered panic:\n%s", s)
	}

	t.Logf("chaos responses: ok=%d invalid=%d docerr=%d shed=%d panic500=%d compile422=%d",
		counts[0].Load(), counts[1].Load(), counts[2].Load(),
		counts[3].Load(), counts[4].Load(), counts[5].Load())
}
