package main

import (
	"bufio"
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dregex/client"
)

// TestDregexdSmoke is the CI server smoke test (make smoke-server): it
// builds the real dregexd binary, boots it on a free port, registers a
// schema through the Go client, validates one good and one bad document,
// asserts /v1/stats reports a cache hit, and shuts the server down
// gracefully.
func TestDregexdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary smoke test")
	}
	bin := filepath.Join(t.TempDir(), "dregexd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	srv := exec.Command(bin, "-addr", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = srv.Stdout
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The first stdout line announces the resolved listen address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "dregexd listening on "
	if !strings.HasPrefix(line, marker) {
		t.Fatalf("unexpected startup line %q", line)
	}
	addr := strings.TrimPrefix(line, marker)
	go func() { // drain so the server never blocks on a full pipe
		for sc.Scan() {
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := client.New("http://"+addr, nil)

	schema := `<!ELEMENT note (to, body)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT body (#PCDATA)>`
	if _, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(schema)); err != nil {
		t.Fatalf("PutSchema: %v", err)
	}
	// Re-registering recompiles the same content models: cache hits.
	if _, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(schema)); err != nil {
		t.Fatalf("PutSchema (swap): %v", err)
	}

	good, err := c.Validate(ctx, "note", []byte(`<note><to>a</to><body>b</body></note>`))
	if err != nil || !good.Valid {
		t.Fatalf("good document: %+v err=%v", good, err)
	}
	bad, err := c.Validate(ctx, "note", []byte(`<note><body>b</body><to>a</to></note>`))
	if err != nil {
		t.Fatalf("bad document: %v", err)
	}
	if bad.Valid || len(bad.Errors) == 0 {
		t.Fatalf("bad document reported valid: %+v", bad)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Cache.Hits == 0 {
		t.Errorf("stats report no cache hits: %+v", st.Cache)
	}
	if st.Endpoints["validate"].Requests < 2 {
		t.Errorf("validate requests = %d, want >= 2", st.Endpoints["validate"].Requests)
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("server exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Error("server did not shut down within 15s")
	}
}
