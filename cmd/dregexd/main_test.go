package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dregex/client"
	"dregex/internal/obs"
)

// TestDregexdSmoke is the CI server smoke test (make smoke-server): it
// builds the real dregexd binary, boots it on a free port, registers a
// schema through the Go client, validates one good and one bad document,
// asserts /v1/stats reports a cache hit, and shuts the server down
// gracefully.
func TestDregexdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary smoke test")
	}
	bin := filepath.Join(t.TempDir(), "dregexd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	srv := exec.Command(bin, "-addr", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = srv.Stdout
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The first stdout line announces the resolved listen address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "dregexd listening on "
	if !strings.HasPrefix(line, marker) {
		t.Fatalf("unexpected startup line %q", line)
	}
	addr := strings.TrimPrefix(line, marker)
	go func() { // drain so the server never blocks on a full pipe
		for sc.Scan() {
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := client.New("http://"+addr, nil)

	schema := `<!ELEMENT note (to, body)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT body (#PCDATA)>`
	if _, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(schema)); err != nil {
		t.Fatalf("PutSchema: %v", err)
	}
	// Re-registering recompiles the same content models: cache hits.
	if _, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(schema)); err != nil {
		t.Fatalf("PutSchema (swap): %v", err)
	}

	good, err := c.Validate(ctx, "note", []byte(`<note><to>a</to><body>b</body></note>`))
	if err != nil || !good.Valid {
		t.Fatalf("good document: %+v err=%v", good, err)
	}
	bad, err := c.Validate(ctx, "note", []byte(`<note><body>b</body><to>a</to></note>`))
	if err != nil {
		t.Fatalf("bad document: %v", err)
	}
	if bad.Valid || len(bad.Errors) == 0 {
		t.Fatalf("bad document reported valid: %+v", bad)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Cache.Hits == 0 {
		t.Errorf("stats report no cache hits: %+v", st.Cache)
	}
	if st.Endpoints["validate"].Requests < 2 {
		t.Errorf("validate requests = %d, want >= 2", st.Endpoints["validate"].Requests)
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("server exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Error("server did not shut down within 15s")
	}
}

// TestDregexdDrainObservability exercises graceful drain end to end with
// the observability layer on and the rate limiter actively shedding: a
// slow /v1/validate is mid-body when SIGTERM arrives, and must still
// complete with a 200; a request released mid-drain still gets a
// well-formed 429 with Retry-After (admission control keeps shedding
// while the server drains); a /metrics scrape riding a connection that
// was active at shutdown returns coherent totals mid-drain; the access
// log (-log json) carries the final request line before the process
// exits 0.
func TestDregexdDrainObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary drain test")
	}
	bin := filepath.Join(t.TempDir(), "dregexd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// One token per 10s with burst 2: the in-flight connection A takes one
	// token, one quick validate takes the other, and the bucket then stays
	// empty for the rest of the test — shedding is active when the signal
	// lands, deterministically.
	srv := exec.Command(bin, "-addr", "127.0.0.1:0", "-log", "json", "-rate", "0.1", "-burst", "2")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	srv.Stderr = &stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line: %v", sc.Err())
	}
	addr := strings.TrimPrefix(sc.Text(), "dregexd listening on ")
	go func() {
		for sc.Scan() {
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := client.New("http://"+addr, nil)
	schema := `<!ELEMENT note (to, body)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT body (#PCDATA)>`
	if _, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(schema)); err != nil {
		t.Fatalf("PutSchema: %v", err)
	}

	// Connection A: a validate request whose body is only half sent — the
	// handler sits in the body read when the signal lands, so the
	// connection is active and Shutdown must wait for it.
	doc := `<note><to>alice</to><body>hello</body></note>`
	connA, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	fmt.Fprintf(connA, "POST /v1/validate?schema=note HTTP/1.1\r\nHost: %s\r\nContent-Type: application/xml\r\nContent-Length: %d\r\n\r\n", addr, len(doc))
	half := len(doc) / 2
	if _, err := connA.Write([]byte(doc[:half])); err != nil {
		t.Fatal(err)
	}

	// Drain the bucket: one validate passes on the second burst token, the
	// next is shed — the limiter is now actively shedding.
	if ok, err := c.Validate(ctx, "note", []byte(doc)); err != nil || !ok.Valid {
		t.Fatalf("burst validate: %+v err=%v", ok, err)
	}
	if _, err := c.Validate(ctx, "note", []byte(doc)); !client.IsShed(err) {
		t.Fatalf("third validate: err=%v, want shed 429", err)
	}

	// Connection B: a /metrics request with the final header CRLF
	// withheld — active at shutdown, released mid-drain.
	connB, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer connB.Close()
	fmt.Fprintf(connB, "GET /metrics HTTP/1.1\r\nHost: %s\r\n", addr)

	// Connection C: a validate with the final header CRLF withheld, to be
	// released mid-drain — it must shed with a well-formed 429 even while
	// the server is shutting down.
	connC, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer connC.Close()
	fmt.Fprintf(connC, "POST /v1/validate?schema=note HTTP/1.1\r\nHost: %s\r\nContent-Type: application/xml\r\nContent-Length: %d\r\n", addr, len(doc))

	// Let the server read the partial requests, then signal.
	time.Sleep(300 * time.Millisecond)
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	// The in-flight validate completes during the drain.
	if _, err := connA.Write([]byte(doc[half:])); err != nil {
		t.Fatalf("completing body mid-drain: %v", err)
	}
	respA, err := http.ReadResponse(bufio.NewReader(connA), nil)
	if err != nil {
		t.Fatalf("reading drained validate response: %v", err)
	}
	var vr client.ValidateResponse
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("drained validate: status %d", respA.StatusCode)
	}
	if err := jsonDecode(respA.Body, &vr); err != nil || !vr.Valid {
		t.Fatalf("drained validate verdict: %+v err=%v", vr, err)
	}
	respA.Body.Close()

	// A /metrics scrape mid-drain: strictly parseable, histogram
	// invariants hold, and the just-completed validate is counted — the
	// counter and its histogram agree.
	if _, err := connB.Write([]byte("\r\n")); err != nil {
		t.Fatalf("releasing metrics request mid-drain: %v", err)
	}
	respB, err := http.ReadResponse(bufio.NewReader(connB), nil)
	if err != nil {
		t.Fatalf("reading mid-drain metrics: %v", err)
	}
	exp, err := obs.ParseExposition(respB.Body)
	respB.Body.Close()
	if err != nil {
		t.Fatalf("mid-drain exposition: %v", err)
	}
	if err := exp.CheckHistograms(); err != nil {
		t.Fatalf("mid-drain histograms: %v", err)
	}
	// Three validates so far: connA (drained to completion), the burst
	// success, the shed 429 — every one counted, with its duration, and
	// the shed one also in dregexd_shed_total.
	ep := obs.L("endpoint", "validate")
	reqs, ok1 := exp.Get("dregexd_requests_total", ep)
	durs, ok2 := exp.Get("dregexd_request_duration_seconds_count", ep)
	if !ok1 || !ok2 || reqs != 3 || durs != 3 {
		t.Errorf("mid-drain totals: requests=%v(%v) durations=%v(%v), want 3/3", reqs, ok1, durs, ok2)
	}
	shed, ok := exp.Get("dregexd_shed_total", ep, obs.L("reason", "rate"))
	if !ok || shed < 1 {
		t.Errorf("mid-drain shed total: %v(%v), want >= 1", shed, ok)
	}

	// Release connection C: a request arriving mid-drain while the bucket
	// is empty still gets a complete, well-formed shed response.
	if _, err := connC.Write([]byte("\r\n" + doc)); err != nil {
		t.Fatalf("releasing validate mid-drain: %v", err)
	}
	respC, err := http.ReadResponse(bufio.NewReader(connC), nil)
	if err != nil {
		t.Fatalf("reading mid-drain shed response: %v", err)
	}
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("mid-drain shed status = %d, want 429", respC.StatusCode)
	}
	if respC.Header.Get("Retry-After") == "" {
		t.Error("mid-drain shed response missing Retry-After")
	}
	var er client.ErrorResponse
	if err := jsonDecode(respC.Body, &er); err != nil || er.Error == "" || er.RetryAfterMs <= 0 {
		t.Errorf("mid-drain shed body: %+v err=%v", er, err)
	}
	respC.Body.Close()

	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("server exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain within 15s")
	}

	// The final access-log line flushed before exit: the drained validate
	// with its schema and verdict.
	logs := stderr.String()
	if !strings.Contains(logs, `"path":"/v1/validate"`) ||
		!strings.Contains(logs, `"schema":"note"`) ||
		!strings.Contains(logs, `"verdict":"valid"`) {
		t.Errorf("access log missing drained request line:\n%s", logs)
	}
}

// jsonDecode decodes one JSON value from r.
func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}
