// Command xmlvalid validates XML documents against DTD content models,
// using the paper's streaming transition simulators (each element's child
// sequence is checked in one pass with O(1) state per open element).
// Documents are validated concurrently by a worker pool sharing one set of
// compiled models, so corpus runs amortize every compile.
//
// Usage:
//
//	xmlvalid [-dtd FILE.dtd] [-workers N] [-json] [-q] [-stats] PATH...
//
// Each PATH is an XML file or a directory walked recursively for *.xml
// files. With -dtd, every document validates against that DTD; without it,
// each document must carry its own internal subset (<!DOCTYPE root [ … ]>),
// which is parsed per document through a shared expression cache — content
// models repeated across the corpus compile once.
//
// Exit status: 0 all documents valid, 1 any invalid or unreadable,
// 2 usage error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dregex"
	"dregex/internal/cli"
	"dregex/internal/dtd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is main minus process concerns, so CLI behavior is testable; reports
// still go to stdout (via cli.PrintReports), diagnostics to stderr.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("xmlvalid", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dtdPath = fs.String("dtd", "", "DTD file; omit to use each document's internal subset")
		workers = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		jsonOut = fs.Bool("json", false, "emit a JSON report")
		quiet   = fs.Bool("q", false, "text mode: only report invalid documents and the summary")
		stats   = fs.Bool("stats", false, "print an end-of-run metrics summary (docs/sec, bytes/sec, engine tiers) to stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: xmlvalid [-dtd FILE.dtd] [-workers N] [-json] [-q] PATH...")
		return 2
	}
	paths := cli.CollectFiles(fs.Args(), ".xml")
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "error: no XML documents found")
		return 1
	}

	// One cache for the whole run: every distinct content model — whether
	// from the -dtd file or from per-document internal subsets — compiles
	// exactly once however many declarations or documents reuse it.
	cache := dregex.NewCache(4096)
	var v *dtd.Validator
	if *dtdPath != "" {
		data, err := os.ReadFile(*dtdPath)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		d, err := dtd.ParseWithCache(string(data), cache)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		v = dtd.NewValidator(d, *workers)
	} else {
		v = dtd.NewStandaloneValidator(cache, *workers)
	}

	start := time.Now()
	results := v.ValidateFiles(paths)
	elapsed := time.Since(start)
	reports := make([]cli.DocReport[dtd.ValidationError], len(results))
	for i, r := range results {
		reports[i] = cli.DocReport[dtd.ValidationError]{
			Path: r.Name, Valid: r.Valid(), Errors: r.Errors,
		}
		if r.Err != nil {
			reports[i].Error = r.Err.Error()
		}
	}
	invalid, err := cli.PrintReports(reports, *jsonOut, *quiet)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	if *stats {
		rs := cli.RunStats{
			Count:   len(paths),
			Invalid: invalid,
			Bytes:   cli.SumFileSizes(paths),
			Elapsed: elapsed,
		}
		if err := rs.Write(stderr); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
	}
	if invalid > 0 {
		return 1
	}
	return 0
}
