// Command xmlvalid validates XML documents against a DTD's content models,
// using the paper's streaming transition simulators (each element's child
// sequence is checked in one pass with O(1) state per open element).
//
// Usage:
//
//	xmlvalid -dtd FILE.dtd DOC.xml [DOC.xml...]
package main

import (
	"flag"
	"fmt"
	"os"

	"dregex"
	"dregex/internal/dtd"
)

func main() {
	dtdPath := flag.String("dtd", "", "DTD file with <!ELEMENT> declarations")
	flag.Parse()
	if *dtdPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: xmlvalid -dtd FILE.dtd DOC.xml...")
		os.Exit(2)
	}
	data, err := os.ReadFile(*dtdPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	// An explicit cache: every content model compiles once, however many
	// declarations or documents reuse it.
	d, err := dtd.ParseWithCache(string(data), dregex.NewCache(1024))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	exit := 0
	for _, doc := range flag.Args() {
		f, err := os.Open(doc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			exit = 1
			continue
		}
		errs, err := d.Validate(f)
		f.Close()
		if err != nil {
			fmt.Printf("%s: %v\n", doc, err)
			exit = 1
			continue
		}
		if len(errs) == 0 {
			fmt.Printf("%s: valid\n", doc)
			continue
		}
		exit = 1
		fmt.Printf("%s: %d error(s)\n", doc, len(errs))
		for _, e := range errs {
			fmt.Printf("  %s\n", e)
		}
	}
	os.Exit(exit)
}
