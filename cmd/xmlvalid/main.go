// Command xmlvalid validates XML documents against DTD content models,
// using the paper's streaming transition simulators (each element's child
// sequence is checked in one pass with O(1) state per open element).
// Documents are validated concurrently by a worker pool sharing one set of
// compiled models, so corpus runs amortize every compile.
//
// Usage:
//
//	xmlvalid [-dtd FILE.dtd] [-workers N] [-json] [-q] PATH...
//
// Each PATH is an XML file or a directory walked recursively for *.xml
// files. With -dtd, every document validates against that DTD; without it,
// each document must carry its own internal subset (<!DOCTYPE root [ … ]>),
// which is parsed per document through a shared expression cache — content
// models repeated across the corpus compile once.
//
// Exit status: 0 all documents valid, 1 any invalid or unreadable,
// 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dregex"
	"dregex/internal/cli"
	"dregex/internal/dtd"
)

type report struct {
	Path   string                `json:"path"`
	Valid  bool                  `json:"valid"`
	Errors []dtd.ValidationError `json:"errors,omitempty"`
	Error  string                `json:"error,omitempty"`
}

func main() {
	var (
		dtdPath = flag.String("dtd", "", "DTD file; omit to use each document's internal subset")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		jsonOut = flag.Bool("json", false, "emit a JSON report")
		quiet   = flag.Bool("q", false, "text mode: only report invalid documents and the summary")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: xmlvalid [-dtd FILE.dtd] [-workers N] [-json] [-q] PATH...")
		os.Exit(2)
	}
	paths := cli.CollectFiles(flag.Args(), ".xml")
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "error: no XML documents found")
		os.Exit(1)
	}

	// One cache for the whole run: every distinct content model — whether
	// from the -dtd file or from per-document internal subsets — compiles
	// exactly once however many declarations or documents reuse it.
	cache := dregex.NewCache(4096)
	var v *dtd.Validator
	if *dtdPath != "" {
		data, err := os.ReadFile(*dtdPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		d, err := dtd.ParseWithCache(string(data), cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		v = dtd.NewValidator(d, *workers)
	} else {
		v = dtd.NewStandaloneValidator(cache, *workers)
	}

	results := v.ValidateFiles(paths)
	reports := make([]report, len(results))
	invalid := 0
	for i, r := range results {
		reports[i] = report{Path: r.Name, Valid: r.Valid(), Errors: r.Errors}
		if r.Err != nil {
			reports[i].Error = r.Err.Error()
		}
		if !r.Valid() {
			invalid++
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	} else {
		for _, r := range reports {
			if r.Valid {
				if !*quiet {
					fmt.Printf("%s: valid\n", r.Path)
				}
				continue
			}
			// A document-level error (malformed XML, say) can coexist with
			// violations found before it; report both, like JSON mode.
			if r.Error != "" {
				fmt.Printf("%s: error: %s\n", r.Path, r.Error)
			} else {
				fmt.Printf("%s: %d error(s)\n", r.Path, len(r.Errors))
			}
			for _, e := range r.Errors {
				fmt.Printf("  %s\n", e)
			}
		}
		fmt.Printf("%d document(s), %d valid, %d invalid\n",
			len(reports), len(reports)-invalid, invalid)
	}
	if invalid > 0 {
		os.Exit(1)
	}
}
