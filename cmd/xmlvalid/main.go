// Command xmlvalid validates XML documents against DTD content models,
// using the paper's streaming transition simulators (each element's child
// sequence is checked in one pass with O(1) state per open element).
// Documents are validated concurrently by a worker pool sharing one set of
// compiled models, so corpus runs amortize every compile.
//
// Usage:
//
//	xmlvalid [-dtd FILE.dtd] [-workers N] [-json] [-q] PATH...
//
// Each PATH is an XML file or a directory walked recursively for *.xml
// files. With -dtd, every document validates against that DTD; without it,
// each document must carry its own internal subset (<!DOCTYPE root [ … ]>),
// which is parsed per document through a shared expression cache — content
// models repeated across the corpus compile once.
//
// Exit status: 0 all documents valid, 1 any invalid or unreadable,
// 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"dregex"
	"dregex/internal/cli"
	"dregex/internal/dtd"
)

func main() {
	var (
		dtdPath = flag.String("dtd", "", "DTD file; omit to use each document's internal subset")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		jsonOut = flag.Bool("json", false, "emit a JSON report")
		quiet   = flag.Bool("q", false, "text mode: only report invalid documents and the summary")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: xmlvalid [-dtd FILE.dtd] [-workers N] [-json] [-q] PATH...")
		os.Exit(2)
	}
	paths := cli.CollectFiles(flag.Args(), ".xml")
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "error: no XML documents found")
		os.Exit(1)
	}

	// One cache for the whole run: every distinct content model — whether
	// from the -dtd file or from per-document internal subsets — compiles
	// exactly once however many declarations or documents reuse it.
	cache := dregex.NewCache(4096)
	var v *dtd.Validator
	if *dtdPath != "" {
		data, err := os.ReadFile(*dtdPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		d, err := dtd.ParseWithCache(string(data), cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		v = dtd.NewValidator(d, *workers)
	} else {
		v = dtd.NewStandaloneValidator(cache, *workers)
	}

	results := v.ValidateFiles(paths)
	reports := make([]cli.DocReport[dtd.ValidationError], len(results))
	for i, r := range results {
		reports[i] = cli.DocReport[dtd.ValidationError]{
			Path: r.Name, Valid: r.Valid(), Errors: r.Errors,
		}
		if r.Err != nil {
			reports[i].Error = r.Err.Error()
		}
	}
	invalid, err := cli.PrintReports(reports, *jsonOut, *quiet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if invalid > 0 {
		os.Exit(1)
	}
}
