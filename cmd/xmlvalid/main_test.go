package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// runQuiet runs the CLI with stdout captured (reports go to real stdout
// via cli.PrintReports).
func runQuiet(t *testing.T, args ...string) (int, string) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		b.ReadFrom(r)
		done <- b.String()
	}()
	var stderr bytes.Buffer
	code := run(args, &stderr)
	w.Close()
	os.Stdout = saved
	return code, <-done + stderr.String()
}

// CLI-level regression for the entity and BOM fixes together: a
// BOM-prefixed standalone document whose internal subset declares and
// references a general entity must validate (it used to fail as
// "malformed XML" / misreported positions).
func TestXmlvalidEntityBOMFile(t *testing.T) {
	dir := t.TempDir()
	doc := "\uFEFF" + `<?xml version="1.0"?>
<!DOCTYPE note [
  <!ELEMENT note (to, body)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
  <!ENTITY who "Alice">
]>
<note><to>&who;</to><body>hi &amp; bye</body></note>`
	path := filepath.Join(dir, "note.xml")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out := runQuiet(t, path)
	if code != 0 {
		t.Errorf("exit = %d, want 0; output:\n%s", code, out)
	}

	// And the inverse: an undeclared entity still fails.
	bad := filepath.Join(dir, "bad.xml")
	if err := os.WriteFile(bad, []byte(`<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>&nope;</a>`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out = runQuiet(t, bad)
	if code != 1 {
		t.Errorf("undeclared entity: exit = %d, want 1; output:\n%s", code, out)
	}
}

// A BOM-prefixed external DTD works through -dtd mode too.
func TestXmlvalidBOMExternalDTD(t *testing.T) {
	dir := t.TempDir()
	dtdPath := filepath.Join(dir, "s.dtd")
	if err := os.WriteFile(dtdPath, []byte("\uFEFF<!ELEMENT a (#PCDATA)>\n<!ENTITY e \"x\">"), 0o644); err != nil {
		t.Fatal(err)
	}
	docPath := filepath.Join(dir, "d.xml")
	if err := os.WriteFile(docPath, []byte(`<a>&e;</a>`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := runQuiet(t, "-dtd", dtdPath, docPath)
	if code != 0 {
		t.Errorf("exit = %d, want 0; output:\n%s", code, out)
	}
}

// Positions in CLI reports are rune-accurate: multi-byte UTF-8 text and a
// leading BOM must not skew the printed line:col (encoding/xml's offsets
// used to; the xmltok path counts runes and strips the BOM).
func TestXmlvalidPositionMultibyteBOM(t *testing.T) {
	dir := t.TempDir()
	doc := "\uFEFF" + `<!DOCTYPE r [
  <!ELEMENT r (#PCDATA | a)*>
  <!ELEMENT a EMPTY>
]>
<r>héllo wörld <b/></r>`
	path := filepath.Join(dir, "pos.xml")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := runQuiet(t, path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	// "<r>héllo wörld " puts <b/> at rune column 16 of line 5 (byte
	// column 18 — the wrong answer).
	if !bytes.Contains([]byte(out), []byte("5:16:")) {
		t.Errorf("report lacks rune-accurate position 5:16:\n%s", out)
	}
}

// Content-model violations carry expected-next hints, in both report
// forms: the JSON "expected" array and the text "(expected one of: …)"
// suffix. The hints come from probing the failed run's last viable state,
// so they name exactly the elements that would have been legal.
func TestXmlvalidExpectedHints(t *testing.T) {
	dir := t.TempDir()
	doc := `<!DOCTYPE book [
  <!ELEMENT book (title, author+, (section | appendix)*)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT section (#PCDATA)>
  <!ELEMENT appendix (#PCDATA)>
]>
<book><title>t</title><section>s</section></book>`
	path := filepath.Join(dir, "book.xml")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out := runQuiet(t, path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !bytes.Contains([]byte(out), []byte("(expected one of: author)")) {
		t.Errorf("text report lacks expected-next hint:\n%s", out)
	}

	code, out = runQuiet(t, "-json", path)
	if code != 1 {
		t.Fatalf("json: exit = %d, want 1; output:\n%s", code, out)
	}
	var reports []map[string]any
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("json report does not parse: %v\n%s", err, out)
	}
	errs := reports[0]["errors"].([]any)
	first := errs[0].(map[string]any)
	if got, _ := first["expected"].([]any); len(got) != 1 || got[0] != "author" {
		t.Errorf("json expected field = %v, want [author]; full error: %v", got, first)
	}
}
