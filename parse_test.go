package dregex

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"dregex/internal/parsetree"
)

func mustMatcher(t *testing.T, src string, syntax Syntax, algo Algorithm) *Matcher {
	t.Helper()
	e, err := Compile(src, syntax)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	m, err := e.Matcher(algo)
	if err != nil {
		t.Fatalf("Matcher(%v): %v", algo, err)
	}
	return m
}

func TestParseAccepted(t *testing.T) {
	m := mustMatcher(t, "(ab+b(b?)a)*", Math, Auto)
	res, err := m.ParseText("abba")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.FailedAt != -1 || len(res.Expected) != 0 {
		t.Fatalf("abba: %+v", res)
	}
	if len(res.Trace) != 4 {
		t.Fatalf("trace length %d, want 4", len(res.Trace))
	}
	want := "(star (union (cat a b)) (union (cat (cat b (opt)) a)))"
	if got := res.TreeString(); got != want {
		t.Fatalf("tree %s, want %s", got, want)
	}
	// The parse leaves are the word, in order, with word indices 0..n-1.
	leaves := res.Tree.Leaves(m.expr.tree, nil)
	if len(leaves) != 4 {
		t.Fatalf("leaves %d, want 4", len(leaves))
	}
	for i, l := range leaves {
		if l.WordIndex != i {
			t.Fatalf("leaf %d has WordIndex %d", i, l.WordIndex)
		}
		if l.Expr != res.Trace[i] {
			t.Fatalf("leaf %d is node %d, trace says %d", i, l.Expr, res.Trace[i])
		}
	}
}

func TestParseEmptyWord(t *testing.T) {
	m := mustMatcher(t, "(ab)*", Math, Auto)
	res, err := m.ParseText("")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.TreeString() != "(star)" {
		t.Fatalf("empty word: %+v tree=%s", res, res.TreeString())
	}
}

func TestParseRejected(t *testing.T) {
	e, err := Compile("title, author+, (section | appendix)*", DTD)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Matcher(Auto)
	if err != nil {
		t.Fatal(err)
	}

	// Dies mid-word: title then title.
	res, err := m.Parse([]string{"title", "title", "author"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.FailedAt != 1 || res.Tree != nil {
		t.Fatalf("mid-word reject: %+v", res)
	}
	if len(res.Trace) != 1 {
		t.Fatalf("trace of viable prefix: %v", res.Trace)
	}
	if !reflect.DeepEqual(res.Expected, []string{"author"}) {
		t.Fatalf("expected hint: %v", res.Expected)
	}

	// Ends prematurely: FailedAt == len(word).
	res, err = m.Parse([]string{"title"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.FailedAt != 1 {
		t.Fatalf("premature end: %+v", res)
	}
	if !reflect.DeepEqual(res.Expected, []string{"author"}) {
		t.Fatalf("expected hint at end: %v", res.Expected)
	}

	// Unknown symbol rejects at its index.
	res, err = m.Parse([]string{"title", "author", "price"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.FailedAt != 2 {
		t.Fatalf("unknown symbol: %+v", res)
	}
	sort.Strings(res.Expected)
	if !reflect.DeepEqual(res.Expected, []string{"appendix", "author", "section"}) {
		t.Fatalf("expected after author: %v", res.Expected)
	}
}

// TestParseAllEnginesAgree is the quick in-package witness cross-check; the
// exhaustive randomized matrix lives in engines_diff_test.go.
func TestParseAllEnginesAgree(t *testing.T) {
	src := "((a(b+c))*d)?e"
	ref := mustMatcher(t, src, Math, KORE)
	for _, algo := range []Algorithm{Table, Colored, ColoredBinary, PathDecomp, Climbing} {
		m := mustMatcher(t, src, Math, algo)
		for _, w := range []string{"e", "abde", "acabde", "abx", "", "ab"} {
			want, err := ref.ParseText(w)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.ParseText(w)
			if err != nil {
				t.Fatal(err)
			}
			if want.Accepted != got.Accepted || want.FailedAt != got.FailedAt ||
				!reflect.DeepEqual(want.Trace, got.Trace) ||
				want.TreeString() != got.TreeString() {
				t.Fatalf("%v on %q: got %+v (%s), want %+v (%s)",
					algo, w, got, got.TreeString(), want, want.TreeString())
			}
		}
	}
}

func TestNumericParse(t *testing.T) {
	e, err := CompileNumeric("(ab){2,3}", Math)
	if err != nil {
		t.Fatal(err)
	}
	m := e.Matcher()
	res, err := m.Parse([]string{"a", "b", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.Tree != nil {
		t.Fatalf("abab: %+v", res)
	}
	if len(res.Trace) != 4 {
		t.Fatalf("trace: %v", res.Trace)
	}
	for _, p := range res.Trace {
		if p == parsetree.Null {
			t.Fatalf("deterministic counter run recorded Null: %v", res.Trace)
		}
	}
	// One iteration short: the counters demand another (ab).
	res, err = m.Parse([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.FailedAt != 2 {
		t.Fatalf("ab: %+v", res)
	}
	if !reflect.DeepEqual(res.Expected, []string{"a"}) {
		t.Fatalf("expected: %v", res.Expected)
	}
	// Overrun: a fifth symbol has no viable configuration.
	res, err = m.Parse([]string{"a", "b", "a", "b", "a", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.FailedAt != 6 {
		t.Fatalf("overrun: %+v", res)
	}
	if len(res.Expected) != 0 {
		t.Fatalf("nothing can follow three iterations: %v", res.Expected)
	}
}

func TestParseNFAEngineErrors(t *testing.T) {
	e, err := Compile("(a+b)*a", Math)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Matcher(NFA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Parse([]string{"a"}); err == nil ||
		!strings.Contains(err.Error(), "deterministic") {
		t.Fatalf("NFA Parse error: %v", err)
	}
}
