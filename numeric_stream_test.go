package dregex

import (
	"testing"
)

// TestNumericMatcherStream exercises the NumericExpr Matcher/InitStream
// parity path: incremental feeding, prefix acceptance, reuse across words.
func TestNumericMatcherStream(t *testing.T) {
	e, err := CompileNumeric("(a, b){2,3}, c?", DTD)
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsDeterministic() {
		t.Fatalf("(a,b){2,3},c? must be deterministic, rule=%s", e.Rule())
	}
	m := e.Matcher()
	if m2 := e.Matcher(); m2 != m {
		t.Error("Matcher must return the same cached engine")
	}

	var s NumericStream
	if !m.InitStream(&s) {
		t.Fatal("InitStream reported false")
	}
	feedAll := func(names ...string) bool {
		m.InitStream(&s)
		for _, n := range names {
			if !s.FeedName(n) {
				return false
			}
		}
		return true
	}
	cases := []struct {
		word   []string
		viable bool
		accept bool
	}{
		{[]string{"a", "b", "a", "b"}, true, true},
		{[]string{"a", "b", "a", "b", "c"}, true, true},
		{[]string{"a", "b", "a", "b", "a", "b"}, true, true},
		{[]string{"a", "b"}, true, false},                           // below Min
		{[]string{"a", "b", "a", "b", "a", "b", "a"}, false, false}, // beyond Max
		{[]string{"a", "a"}, false, false},
		{[]string{"z"}, false, false},
	}
	for _, c := range cases {
		viable := feedAll(c.word...)
		if viable != c.viable {
			t.Errorf("feed %v: viable=%v, want %v", c.word, viable, c.viable)
		}
		if got := s.Accepts(); got != c.accept {
			t.Errorf("feed %v: accepts=%v, want %v", c.word, got, c.accept)
		}
		// Matcher word-at-once APIs must agree with the stream.
		if got := m.MatchSymbols(c.word); got != c.accept {
			t.Errorf("MatchSymbols(%v)=%v, want %v", c.word, got, c.accept)
		}
		if got := m.MatchWord(e.Intern(c.word)); got != c.accept {
			t.Errorf("MatchWord(%v)=%v, want %v", c.word, got, c.accept)
		}
	}
	// Accepts must be non-destructive: querying mid-word must not disturb
	// the run.
	m.InitStream(&s)
	for i, n := range []string{"a", "b", "a", "b", "a", "b"} {
		s.Accepts()
		if !s.FeedName(n) {
			t.Fatalf("stream died at symbol %d", i)
		}
	}
	if !s.Accepts() {
		t.Error("(ab)^3 must accept after interleaved Accepts probes")
	}
}

// TestNumericStreamZeroAlloc pins the satellite acceptance criterion: the
// interned steady-state path — InitStream, one Feed per symbol, Accepts —
// performs zero allocations per word once the stream's buffers have warmed
// up, matching the plain Matcher.MatchWord/InitStream guarantee.
func TestNumericStreamZeroAlloc(t *testing.T) {
	e, err := CompileNumeric("(a{2,4}, (b | c)){1,3}, d?", DTD)
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsDeterministic() {
		t.Fatalf("model must be deterministic, rule=%s", e.Rule())
	}
	m := e.Matcher()
	word := e.Intern([]string{"a", "a", "a", "b", "a", "a", "c", "d"})
	var s NumericStream
	run := func() bool {
		m.InitStream(&s)
		for _, a := range word {
			if !s.Feed(a) {
				return false
			}
		}
		return s.Accepts()
	}
	if !run() { // warm up the stream buffers — and check the verdict
		t.Fatal("warm-up word must match")
	}
	if n := testing.AllocsPerRun(500, func() {
		if !run() {
			t.Fatal("word must match")
		}
	}); n != 0 {
		t.Errorf("steady-state numeric stream path allocates %.2f/word, want 0", n)
	}

	// Nondeterministic expressions keep a configuration set; that path must
	// also settle to zero allocations (bounded live set).
	flex, err := CompileNumeric("(a, b?){2,3}, a", DTD)
	if err != nil {
		t.Fatal(err)
	}
	fm := flex.Matcher()
	fword := flex.Intern([]string{"a", "b", "a", "a"})
	frun := func() bool {
		fm.InitStream(&s)
		for _, a := range fword {
			if !s.Feed(a) {
				return false
			}
		}
		return s.Accepts()
	}
	if !frun() {
		t.Fatal("a b a a must match (a,b?){2,3},a")
	}
	if n := testing.AllocsPerRun(500, func() { frun() }); n != 0 {
		t.Errorf("nondeterministic stream path allocates %.2f/word, want 0", n)
	}
}

// TestNumericExplain checks the counterexample diagnosis parity with the
// plain pipeline.
func TestNumericExplain(t *testing.T) {
	det, err := CompileNumeric("(a, b){2}, c", DTD)
	if err != nil {
		t.Fatal(err)
	}
	if amb := det.Explain(); amb != nil {
		t.Fatalf("deterministic expression diagnosed: %+v", amb)
	}

	// (a,b){2,3},a: after (ab)^2 a third 'a' can start iteration 3 or exit.
	flex, err := CompileNumeric("(a, b){2,3}, a", DTD)
	if err != nil {
		t.Fatal(err)
	}
	if flex.IsDeterministic() {
		t.Fatal("(a,b){2,3},a must be nondeterministic")
	}
	amb := flex.Explain()
	if amb == nil || amb.Rule == "" {
		t.Fatalf("missing diagnosis: %+v", amb)
	}
	if amb.Symbol != "a" {
		t.Errorf("ambiguous symbol = %q, want a", amb.Symbol)
	}
	if len(amb.Word) > 0 {
		// A reported witness word must at least be a viable prefix.
		var s NumericStream
		flex.Matcher().InitStream(&s)
		for _, n := range amb.Word {
			if !s.FeedName(n) {
				t.Fatalf("witness word %v is not a viable prefix", amb.Word)
			}
		}
		if amb.Word[len(amb.Word)-1] != amb.Symbol {
			t.Errorf("witness word %v does not end in symbol %q", amb.Word, amb.Symbol)
		}
	}
}
