// Benchmarks regenerating the paper's complexity claims — one benchmark
// family per experiment of DESIGN.md §3 (the paper has no numeric tables;
// these are its measurable claims). EXPERIMENTS.md records representative
// output and compares the measured shape against each theorem.
package dregex_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/determinism"
	"dregex/internal/follow"
	"dregex/internal/glushkov"
	"dregex/internal/match"
	"dregex/internal/match/colored"
	"dregex/internal/match/kore"
	"dregex/internal/match/pathdecomp"
	"dregex/internal/match/starfree"
	"dregex/internal/match/table"
	"dregex/internal/numeric"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
	"dregex/internal/words"
)

func buildTree(b *testing.B, e *ast.Node, alpha *ast.Alphabet) (*parsetree.Tree, *follow.Index) {
	b.Helper()
	tr, err := parsetree.Build(ast.Normalize(e), alpha)
	if err != nil {
		b.Fatal(err)
	}
	return tr, follow.New(tr)
}

// --- E1: determinism testing on mixed content E = (a1+…+am)* -------------
// Theorem 3.5 (linear skeleton test) vs the Brüggemann-Klein baseline,
// whose Glushkov automaton is Θ(m²) on this family (§1).

func BenchmarkE1DeterminismMixedContentLinear(b *testing.B) {
	for _, m := range []int{1024, 4096, 16384, 65536, 262144} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			alpha := ast.NewAlphabet()
			tr, fol := buildTree(b, wordgen.MixedContent(alpha, m), alpha)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !determinism.Check(tr, fol).Deterministic {
					b.Fatal("mixed content must be deterministic")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(m), "ns/sym")
		})
	}
}

func BenchmarkE1DeterminismMixedContentGlushkovBK(b *testing.B) {
	for _, m := range []int{1024, 2048, 4096} { // quadratic: capped
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			alpha := ast.NewAlphabet()
			tr, _ := buildTree(b, wordgen.MixedContent(alpha, m), alpha)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if glushkov.CheckBK(tr) != nil {
					b.Fatal("mixed content must be deterministic")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(m), "ns/sym")
		})
	}
}

// --- E2: determinism testing on random deterministic expressions ----------

func BenchmarkE2DeterminismRandom(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for _, size := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("nodes=%d", size), func(b *testing.B) {
			alpha := ast.NewAlphabet()
			e := wordgen.RandomDeterministicExpr(r, alpha, size/4, size, true)
			tr, fol := buildTree(b, e, alpha)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				determinism.Check(tr, fol)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(tr.N()), "ns/node")
		})
	}
}

// --- E3: k-ORE matching, O(|e| + k|w|) (Theorem 4.3) ----------------------

func BenchmarkE3KORE(b *testing.B) {
	const m, wordLen = 16, 4096
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			alpha := ast.NewAlphabet()
			// The k-occurrence block is starred so arbitrarily long words
			// exist; the loop back to the fresh per-block separator keeps
			// the expression deterministic and k-occurrence.
			tr, fol := buildTree(b, ast.Star(wordgen.KOccurrence(alpha, m, k)), alpha)
			sim := kore.New(tr, fol)
			if sim.K != k {
				b.Fatalf("K = %d, want %d", sim.K, k)
			}
			w, ok := words.RandomWord(rand.New(rand.NewSource(2)), fol, wordLen, 0.0001)
			if !ok || len(w) < wordLen/2 {
				b.Fatalf("could not sample a long word (%d)", len(w))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !match.Word(sim, w) {
					b.Fatal("sampled word must match")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(w)), "ns/sym")
		})
	}
}

// --- E4: path-decomposition matching, O(|e| + c_e|w|) (Theorem 4.10) vs
// the naive climbing baseline, O(depth(e)·|w|) ------------------------------

func benchSimOnWord(b *testing.B, sim match.TransitionSim, w []ast.Symbol) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !match.Word(sim, w) {
			b.Fatal("sampled word must match")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(w)), "ns/sym")
}

func BenchmarkE4PathDecomp(b *testing.B) {
	for _, depth := range []int{2, 4, 6} {
		alpha := ast.NewAlphabet()
		e := wordgen.DeepAlternation(alpha, depth, 3)
		tr, fol := buildTree(b, e, alpha)
		w, ok := words.RandomWord(rand.New(rand.NewSource(3)), fol, 4096, 0.0001)
		if !ok {
			b.Fatal("no word")
		}
		pd, err := pathdecomp.New(tr, fol)
		if err != nil {
			b.Fatal(err)
		}
		cl, err := colored.NewClimbing(tr, fol)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("ce=%d/pathdecomp", pd.CE), func(b *testing.B) { benchSimOnWord(b, pd, w) })
		b.Run(fmt.Sprintf("ce=%d/climbing", pd.CE), func(b *testing.B) { benchSimOnWord(b, cl, w) })
	}
}

// --- E5: colored-ancestor matching, O(|w| log log |e|) (Theorem 4.2), with
// the binary-search predecessor ablation ------------------------------------

func BenchmarkE5Colored(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	for _, size := range []int{1000, 10000, 100000} {
		alpha := ast.NewAlphabet()
		// Starred 3-occurrence blocks: |e| scales with size while long
		// words always exist (the deterministic-random family generates
		// languages whose words are as long as the expression, making
		// fixed-length sampling infeasible at 100k nodes).
		e := ast.Star(wordgen.KOccurrence(alpha, size/8, 3))
		tr, fol := buildTree(b, e, alpha)
		w, ok := words.RandomWord(r, fol, 2048, 0.0001)
		if !ok || len(w) < 1024 {
			b.Fatal("no usable sample")
		}
		veb, err := colored.New(tr, fol, colored.Options{})
		if err != nil {
			b.Fatal(err)
		}
		bin, err := colored.New(tr, fol, colored.Options{BinarySearch: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("nodes=%d/veb", size), func(b *testing.B) { benchSimOnWord(b, veb, w) })
		b.Run(fmt.Sprintf("nodes=%d/binary", size), func(b *testing.B) { benchSimOnWord(b, bin, w) })
	}
}

// --- E5b: dense-table tier vs the §4 engines on a table-eligible workload --
// The flat-table DFA trades O(positions × σ) space for one indexed load
// per symbol; this benchmark quantifies the gap against the k-ORE engine
// (the fastest paper engine on this family) on one shared word.

func BenchmarkTableVsKore(b *testing.B) {
	alpha := ast.NewAlphabet()
	// Starred 3-occurrence blocks over 200 symbols: ~800 positions, well
	// within the dense-table budget, with arbitrarily long words.
	e := ast.Star(wordgen.KOccurrence(alpha, 200, 3))
	tr, fol := buildTree(b, e, alpha)
	w, ok := words.RandomWord(rand.New(rand.NewSource(8)), fol, 4096, 0.0001)
	if !ok || len(w) < 2048 {
		b.Fatal("could not sample a long word")
	}
	tab, err := table.New(tr, fol, 0)
	if err != nil {
		b.Fatal(err)
	}
	k := kore.New(tr, fol)
	b.Run("table", func(b *testing.B) {
		// The devirtualized loop Matcher.MatchWord takes for the Table tier.
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !tab.MatchWord(w) {
				b.Fatal("sampled word must match")
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(w)), "ns/sym")
	})
	b.Run("table-sim", func(b *testing.B) {
		// The generic TransitionSim driver (streams, readers) on the table.
		benchSimOnWord(b, tab, w)
	})
	b.Run(fmt.Sprintf("kore-k%d", k.K), func(b *testing.B) { benchSimOnWord(b, k, w) })
}

// --- E6: star-free multi-word matching, O(|e| + Σ|wᵢ|) (Theorem 4.12) ------

func BenchmarkE6StarFree(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	alpha := ast.NewAlphabet()
	e := wordgen.StarFree(r, alpha, 400, 2000)
	tr, fol := buildTree(b, e, alpha)
	const n = 1000
	corpus := make([][]ast.Symbol, 0, n)
	for len(corpus) < n {
		if w, ok := words.RandomWord(r, fol, 40, 0.2); ok {
			corpus = append(corpus, w)
		} else {
			corpus = append(corpus, words.NoiseWord(r, tr, 10))
		}
	}
	total := 0
	for _, w := range corpus {
		total += len(w)
	}
	batch, err := starfree.NewBatch(tr, fol)
	if err != nil {
		b.Fatal(err)
	}
	scan, err := starfree.NewScan(tr, fol)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.MatchAll(corpus)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(total), "ns/sym")
	})
	b.Run("scan-per-word", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, w := range corpus {
				match.Word(scan, w)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(total), "ns/sym")
	})
}

// --- E7: numeric occurrence determinism, O(|e|) independent of bound
// magnitude (§3.3); the unrolling baseline scales with the bounds ----------

func countedMixed(alpha *ast.Alphabet, m, bound int) *ast.Node {
	parts := make([]*ast.Node, 0, m)
	for i := 0; i < m; i++ {
		parts = append(parts, ast.Opt(ast.Iter(
			ast.Sym(alpha.Intern(wordgen.SymbolName(i))), 2, bound)))
	}
	return ast.CatAll(parts...)
}

func BenchmarkE7NumericLinear(b *testing.B) {
	for _, bound := range []int{4, 1024, 1 << 30} {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			alpha := ast.NewAlphabet()
			e := countedMixed(alpha, 200, bound)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := numeric.Compile(e, alpha)
				if err != nil {
					b.Fatal(err)
				}
				if !c.IsDeterministic() {
					b.Fatal("counted mixed content must be deterministic")
				}
			}
		})
	}
}

func BenchmarkE7NumericUnrollBaseline(b *testing.B) {
	for _, bound := range []int{4, 64, 1024} { // blows up with the bound
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			alpha := ast.NewAlphabet()
			e := countedMixed(alpha, 200, bound)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u, err := ast.Unroll(e, 1<<22)
				if err != nil {
					b.Fatal(err)
				}
				tr, err := parsetree.Build(ast.Normalize(u), alpha)
				if err != nil {
					b.Fatal(err)
				}
				if glushkov.CheckBK(tr) != nil {
					b.Fatal("must be deterministic")
				}
			}
		})
	}
}

// --- E8: checkIfFollow is O(1) after O(|e|) preprocessing (Theorem 2.4) ----

func BenchmarkE8CheckIfFollow(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	for _, size := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("nodes=%d", size), func(b *testing.B) {
			alpha := ast.NewAlphabet()
			e := wordgen.RandomDeterministicExpr(r, alpha, size/4, size, true)
			tr, fol := buildTree(b, e, alpha)
			m := tr.NumPositions()
			pairs := make([][2]parsetree.NodeID, 4096)
			for i := range pairs {
				pairs[i] = [2]parsetree.NodeID{
					tr.PosNode[r.Intn(m)], tr.PosNode[r.Intn(m)],
				}
			}
			b.ResetTimer()
			sink := false
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				sink = fol.CheckIfFollow(p[0], p[1]) != sink
			}
			_ = sink
		})
	}
}

// --- E9: synthetic real-world DTD corpus (98% 1-ORE, 90% CHARE, c_e ≤ 4) ---

func BenchmarkE9DTDCorpus(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	type model struct {
		tr  *parsetree.Tree
		fol *follow.Index
	}
	corpus := make([]model, 0, 500)
	for i := 0; i < 500; i++ {
		alpha := ast.NewAlphabet()
		var e *ast.Node
		switch {
		case i%10 != 0: // 90% CHARE
			e = ast.DesugarPlus(wordgen.CHARE(r, alpha, 2+r.Intn(6), 4))
		case i%100 < 98: // further 1-OREs
			e = wordgen.RandomDeterministicExpr(r, alpha, 12, 40, false)
		default: // the rare repeated-symbol models
			e = wordgen.RandomDeterministicExpr(r, alpha, 12, 40, true)
		}
		tr, err := parsetree.Build(ast.Normalize(e), alpha)
		if err != nil {
			b.Fatal(err)
		}
		corpus = append(corpus, model{tr, follow.New(tr)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range corpus {
			if !determinism.Check(m.tr, m.fol).Deterministic {
				b.Fatal("corpus must be deterministic")
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(corpus)), "ns/model")
}
